"""Tests for the bench harness and the batched-service differential."""

import copy

import pytest

from repro import TigerSystem, small_config
from repro.bench.harness import (
    BENCH_FORMAT,
    PROTOCOL_COUNTERS,
    BenchError,
    diff_results,
    load_result,
    protocol_counters,
    result_filename,
    run_workload,
    summary_lines,
    write_result,
)
from repro.workloads.generator import ContinuousWorkload


@pytest.fixture(scope="module")
def kernel_result():
    """One quick kernel run shared by the shape/gate tests below."""
    return run_workload("kernel", seed=0, quick=True, with_memory=False)


class TestRunWorkload:
    def test_result_shape(self, kernel_result):
        result = kernel_result
        assert result["bench_format"] == BENCH_FORMAT
        assert result["name"] == "kernel"
        assert result["mode"] == "quick"
        assert result["seed"] == 0
        assert set(result["counters"]) == set(PROTOCOL_COUNTERS)
        perf = result["perf"]
        assert perf["events"] > 0
        assert perf["events_per_sec"] > 0
        assert perf["sim_seconds"] == pytest.approx(30.0)
        assert perf["sim_per_wall"] > 0

    def test_idle_kernel_serves_no_blocks(self, kernel_result):
        # Zero viewers: the protocol counters must all stay at zero.
        assert all(value == 0 for value in kernel_result["counters"].values())

    def test_unknown_workload_rejected(self):
        with pytest.raises(BenchError):
            run_workload("nope")

    def test_summary_lines_render(self, kernel_result):
        lines = summary_lines(kernel_result)
        assert lines and "kernel" in lines[0]


class TestLiveTier:
    @pytest.fixture(scope="class")
    def live_result(self):
        """Quick mode: the codec microbench only, no real cluster."""
        return run_workload("live", seed=0, quick=True)

    def test_result_shape(self, live_result):
        assert live_result["name"] == "live"
        assert live_result["mode"] == "quick"
        counters = live_result["counters"]
        assert set(counters) == {
            "live.codec_messages",
            "live.codec_bytes_json",
            "live.codec_bytes_binary",
        }
        # The gated counters are pure functions of the seed.
        again = run_workload("live", seed=0, quick=True)
        assert again["counters"] == counters
        assert live_result["perf"]["events_per_sec"] > 0

    def test_binary_codec_beats_json(self, live_result):
        json_row, binary_row = live_result["codecs"]
        assert json_row["codec"] == "json"
        assert binary_row["codec"] == "binary"
        assert json_row["frames"] == binary_row["frames"]
        assert binary_row["bytes"] < json_row["bytes"]
        assert binary_row["speedup_vs_json"] > 1.0

    def test_quick_mode_skips_the_real_cluster(self, live_result):
        assert "cluster" not in live_result

    def test_summary_lines_render(self, live_result):
        lines = summary_lines(live_result)
        text = "\n".join(lines)
        assert "live" in lines[0]
        assert "binary" in text


class TestPersistence:
    def test_write_load_roundtrip(self, kernel_result, tmp_path):
        path = write_result(kernel_result, str(tmp_path))
        assert path.endswith(result_filename("kernel"))
        assert load_result(path) == kernel_result

    def test_wrong_format_rejected(self, kernel_result, tmp_path):
        stale = copy.deepcopy(kernel_result)
        stale["bench_format"] = BENCH_FORMAT + 1
        stale["name"] = "kernel"
        path = write_result(stale, str(tmp_path))
        with pytest.raises(BenchError):
            load_result(path)


class TestBaselineGate:
    def test_identical_results_pass(self, kernel_result):
        assert diff_results(kernel_result, kernel_result) == []

    def test_counter_drift_fails_exactly(self, kernel_result):
        baseline = copy.deepcopy(kernel_result)
        baseline["counters"]["cub.blocks_sent"] += 1
        problems = diff_results(kernel_result, baseline)
        assert any("cub.blocks_sent" in problem for problem in problems)

    def test_perf_regression_beyond_tolerance_fails(self, kernel_result):
        baseline = copy.deepcopy(kernel_result)
        baseline["perf"]["events_per_sec"] = (
            kernel_result["perf"]["events_per_sec"] * 2.0
        )
        problems = diff_results(kernel_result, baseline, perf_tolerance=0.10)
        assert any("regressed" in problem for problem in problems)

    def test_perf_check_disabled_by_zero_tolerance(self, kernel_result):
        baseline = copy.deepcopy(kernel_result)
        baseline["perf"]["events_per_sec"] = (
            kernel_result["perf"]["events_per_sec"] * 2.0
        )
        assert diff_results(kernel_result, baseline, perf_tolerance=0.0) == []

    def test_mismatched_mode_not_comparable(self, kernel_result):
        baseline = copy.deepcopy(kernel_result)
        baseline["mode"] = "full"
        problems = diff_results(kernel_result, baseline)
        assert problems
        assert any("not comparable" in problem for problem in problems)


def _loaded_run(batched):
    """A small loaded system driven for 20 sim-seconds."""
    system = TigerSystem(small_config(), seed=5, batched_service=batched)
    system.add_standard_content(num_files=4, duration_s=60.0)
    workload = ContinuousWorkload(system)
    workload.add_streams(max(1, system.config.num_slots // 2))
    system.run_for(20.0)
    system.finalize_clients()
    system.export_metrics()
    return system


class TestBatchedServiceDifferential:
    """The batched per-slot-period service tick is an event-count
    optimization only: every protocol counter must match the legacy
    one-timer-per-viewer path exactly at the same config and seed."""

    def test_counters_identical_to_legacy_path(self):
        batched = _loaded_run(batched=True)
        legacy = _loaded_run(batched=False)
        batched_counters = protocol_counters(batched.registry)
        legacy_counters = protocol_counters(legacy.registry)
        assert batched_counters == legacy_counters
        # The run actually exercised the service path.
        assert batched_counters["cub.blocks_sent"] > 0
        assert batched_counters["cub.viewer_states_forwarded"] > 0
        # Batching exists to shrink the kernel event count, never to
        # grow it.
        assert batched.sim.events_dispatched <= legacy.sim.events_dispatched


class TestSweepPointIndependence:
    """Regression (sweep seeding): each sweep point must be a pure
    function of (cubs, seed) — independent of whatever ran earlier in
    the process.  TigerSystem rewinds the process-global message-id and
    play-instance-id sequences at construction, so a point measured
    alone matches the same point inside a full sweep, bit for bit."""

    def test_single_point_matches_point_inside_sweep(self):
        from repro.bench.harness import (
            _scale_build,
            _timed_system_run,
        )

        # The same point measured standalone...
        alone = _timed_system_run(_scale_build(8, 0, 10.0), profiler=None)
        # ...and inside the full quick sweep (after the cubs=4 point has
        # polluted any process-global state it was going to).
        sweep = run_workload("scale", seed=0, quick=True, with_memory=False)
        row = next(r for r in sweep["sweep"] if r["cubs"] == 8)
        assert row["counters"] == alone.counters
        assert row["perf"]["events"] == alone.events
        assert row["perf"]["sim_seconds"] == pytest.approx(
            alone.sim_seconds
        )

    def test_instance_ids_rewind_per_system(self):
        from repro.core.viewerstate import new_instance_id

        TigerSystem(small_config(), seed=0)
        first = new_instance_id()
        TigerSystem(small_config(), seed=0)
        second = new_instance_id()
        assert first == second == 1
