"""Tests for the runtime invariant monitor (repro.faults.monitor)."""

import pytest

from repro import TigerSystem, small_config
from repro.faults.monitor import InvariantMonitor, InvariantViolation
from repro.faults.plan import FaultPlan
from repro.workloads import ContinuousWorkload


def build_running(seed=21, streams=8, warmup=10.0):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=4, duration_s=90)
    workload = ContinuousWorkload(system)
    workload.add_streams(streams)
    system.start()
    system.run_until(warmup)
    return system


class TestSweeps:
    def test_clean_run_passes(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        monitor.install()
        system.run_until(20.0)
        assert monitor.checks_run >= 9
        monitor.final_check()

    def test_install_idempotent(self):
        system = build_running(warmup=1.0)
        monitor = InvariantMonitor(system)
        monitor.install()
        monitor.install()
        system.run_until(4.0)
        # One sweep chain, not two: about one check per period.
        assert monitor.checks_run <= 4

    def test_stop_halts_sweeps(self):
        system = build_running(warmup=1.0)
        monitor = InvariantMonitor(system)
        monitor.install()
        system.run_until(3.0)
        seen = monitor.checks_run
        monitor.stop()
        system.run_until(8.0)
        assert monitor.checks_run == seen


class TestGraceWindows:
    def test_note_fault_opens_relaxed_window(self):
        system = build_running(warmup=1.0)
        monitor = InvariantMonitor(system)
        spec = FaultPlan().crash_cub(1, at=5.0).events[0]
        monitor.note_fault(spec)
        assert not monitor._relaxed(4.9)
        assert monitor._relaxed(5.0)
        assert monitor._relaxed(5.0 + monitor.settle_margin - 0.1)
        assert not monitor._relaxed(5.0 + monitor.settle_margin + 0.1)
        assert monitor._converge_after == pytest.approx(
            5.0 + monitor.settle_margin
        )

    def test_hard_checks_never_stand_down(self):
        """Delivery conservation must hold even mid-fault-window."""
        system = build_running()
        monitor = InvariantMonitor(system)
        spec = FaultPlan().crash_cub(1, at=0.0, restart_after=100.0).events[0]
        monitor.note_fault(spec)
        assert monitor._relaxed(system.sim.now)
        victim = system.clients[0].all_monitors()[0]
        victim.blocks_missed += 1  # break the ledger
        with pytest.raises(InvariantViolation, match=r"\[conservation\]"):
            monitor.check_now()

    def test_deadman_check_waits_for_convergence_window(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        spec = FaultPlan().crash_cub(1, at=system.sim.now).events[0]
        monitor.note_fault(spec)
        system.fail_cub(1)
        # Beliefs lag reality, but the grace window covers the fault.
        monitor.check_now()


class TestDetection:
    def test_deadman_divergence_detected_outside_grace(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        system.fail_cub(1)  # no note_fault: monitor expects convergence
        with pytest.raises(InvariantViolation, match=r"\[deadman-convergence\]"):
            monitor.check_now()

    def test_never_started_stream_detected(self):
        system = build_running()
        monitor = InvariantMonitor(system, startup_grace=5.0)
        victim = system.clients[0].all_monitors()[0]
        victim.first_block_time = None
        victim.request_time = system.sim.now - 10.0
        with pytest.raises(InvariantViolation, match=r"\[stream-liveness\]"):
            monitor.check_now()

    def test_stalled_stream_detected(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        victim = system.clients[0].all_monitors()[0]
        # Backdate the stream so its next block is long overdue.
        victim.first_block_time = -1000.0
        with pytest.raises(
            InvariantViolation, match="undelivered-block leak"
        ):
            monitor.check_now()

    def test_corruption_detected(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        victim = system.clients[0].all_monitors()[0]
        victim.blocks_corrupt += 1
        with pytest.raises(InvariantViolation, match=r"\[corruption\]"):
            monitor.check_now()

    def test_violation_carries_trace_dump(self):
        system = build_running()
        monitor = InvariantMonitor(system)
        victim = system.clients[0].all_monitors()[0]
        victim.blocks_missed += 1
        with pytest.raises(InvariantViolation, match="trace records"):
            monitor.check_now()
