"""Tests for trace export (JSONL + Chrome) and the event-loop profiler."""

import json

import pytest

from repro.obs.export import (
    records_from_jsonl,
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_jsonl_trace,
    write_trace,
)
from repro.obs.profiler import EventLoopProfiler
from repro.obs.registry import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.trace import KIND_SPAN, Tracer


def make_tracer():
    tracer = Tracer()
    tracer.enable()
    tracer.emit(1.0, "insert", "cub:0: scheduled viewer", node="cub:0", slot=7)
    tracer.emit_span(
        2.0, 2.5, "block.service", "cub:1: served block", node="cub:1", block=3
    )
    tracer.emit(3.0, "fault.inject", "cub 1 failed", target="cub:1")
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = make_tracer()
        text = trace_to_jsonl(tracer.records)
        restored = records_from_jsonl(text)
        assert restored == list(tracer.records)

    def test_span_fields_preserved(self):
        tracer = make_tracer()
        restored = records_from_jsonl(trace_to_jsonl(tracer.records))
        span = restored[1]
        assert span.kind == KIND_SPAN
        assert span.duration == pytest.approx(0.5)
        assert span.fields["block"] == 3

    def test_empty(self):
        assert trace_to_jsonl([]) == ""
        assert records_from_jsonl("") == []

    def test_write_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        count = write_jsonl_trace(str(path), make_tracer().records)
        assert count == 3
        assert len(records_from_jsonl(path.read_text())) == 3


class TestChrome:
    def test_document_structure(self):
        doc = trace_to_chrome(make_tracer().records)
        assert "traceEvents" in doc
        events = doc["traceEvents"]
        # Metadata first: process_name, then one thread_name per node.
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "tiger"
        thread_names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        # Two component nodes, plus the category fallback for the bare
        # emit without a node field.
        assert thread_names == {"cub:0", "cub:1", "fault.inject"}

    def test_instants_and_spans(self):
        doc = trace_to_chrome(make_tracer().records)
        body = [e for e in doc["traceEvents"] if e["ph"] in ("i", "X")]
        instant = body[0]
        assert instant["ph"] == "i"
        assert instant["ts"] == pytest.approx(1.0e6)  # seconds -> us
        assert instant["args"]["slot"] == 7
        assert "node" not in instant["args"]  # consumed as the thread
        span = body[1]
        assert span["ph"] == "X"
        assert span["dur"] == pytest.approx(0.5e6)

    def test_written_file_is_json_loadable(self, tmp_path):
        path = tmp_path / "t.json"
        count = write_chrome_trace(str(path), make_tracer().records)
        assert count == 3
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3 + 1 + 3  # events + process + threads

    def test_write_trace_infers_format(self, tmp_path):
        chrome = tmp_path / "a.json"
        jsonl = tmp_path / "a.jsonl"
        write_trace(str(chrome), make_tracer().records)
        write_trace(str(jsonl), make_tracer().records)
        assert "traceEvents" in json.loads(chrome.read_text())
        assert records_from_jsonl(jsonl.read_text())
        with pytest.raises(ValueError):
            write_trace(str(chrome), [], fmt="xml")


class TestTracerBound:
    def test_ring_drops_are_counted(self):
        tracer = Tracer(capacity=3)
        tracer.enable()
        for i in range(5):
            tracer.emit(float(i), "x", str(i))
        assert len(tracer.records) == 3
        assert tracer.dropped == 2
        # Oldest evicted: the ring retains the most recent records.
        assert [r.message for r in tracer.records] == ["2", "3", "4"]

    def test_span_validation_precedes_enabled_check(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.emit_span(2.0, 1.0, "x", "backwards")


class TestProfiler:
    def test_records_handlers_through_simulator(self):
        sim = Simulator()
        profiler = EventLoopProfiler()
        sim.set_profiler(profiler)
        calls = []

        def handler():
            calls.append(sim.now)

        sim.call_at(1.0, handler)
        sim.call_at(2.0, handler)
        sim.run(until=5.0)
        assert len(calls) == 2
        rows = profiler.rows()
        assert len(rows) == 1
        name, count, wall = rows[0]
        assert "handler" in name
        assert count == 2
        assert wall >= 0.0
        assert profiler.events == 2
        assert profiler.sim_elapsed == pytest.approx(1.0)

    def test_publish_into_registry(self):
        sim = Simulator()
        profiler = EventLoopProfiler()
        sim.set_profiler(profiler)
        sim.call_at(1.0, lambda: None)
        sim.run(until=2.0)
        registry = MetricsRegistry()
        profiler.publish(registry)
        assert registry.get_value("sim.profile_events") == 1
        assert "sim.handler_calls" in registry.names()

    def test_no_profiler_means_no_overhead_attribute(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.call_at(1.0, lambda: None)
        sim.run(until=2.0)  # dispatch works with the profiler detached
