"""Tests for the measurement primitives."""


import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    BusyMeter,
    Counter,
    Histogram,
    RateMeter,
    TimeWeightedValue,
    WelfordAccumulator,
    percentile,
    summarize,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().count == 0

    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(5)
        assert counter.count == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestWelford:
    def test_mean_and_variance(self):
        acc = WelfordAccumulator()
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            acc.add(value)
        assert acc.mean == pytest.approx(5.0)
        assert acc.stdev == pytest.approx(2.138, abs=1e-3)

    def test_min_max(self):
        acc = WelfordAccumulator()
        for value in [3.0, -1.0, 7.0]:
            acc.add(value)
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_empty_mean_is_zero(self):
        assert WelfordAccumulator().mean == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_batch_computation(self, values):
        acc = WelfordAccumulator()
        for value in values:
            acc.add(value)
        mean = sum(values) / len(values)
        assert acc.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)


class TestTimeWeightedValue:
    def test_constant_value(self):
        tw = TimeWeightedValue(0.0, 5.0)
        assert tw.average(10.0) == pytest.approx(5.0)

    def test_step_function(self):
        tw = TimeWeightedValue(0.0, 0.0)
        tw.update(5.0, 10.0)
        # 0 for 5 s then 10 for 5 s
        assert tw.average(10.0) == pytest.approx(5.0)

    def test_time_backwards_rejected(self):
        tw = TimeWeightedValue(0.0, 0.0)
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_reset_restarts_window(self):
        tw = TimeWeightedValue(0.0, 10.0)
        tw.reset(100.0)
        tw.update(100.0, 2.0)
        assert tw.average(110.0) == pytest.approx(2.0)


class TestBusyMeter:
    def test_no_busy_time_is_idle(self):
        meter = BusyMeter(0.0)
        assert meter.utilization(10.0) == 0.0

    def test_half_busy(self):
        meter = BusyMeter(0.0)
        meter.add_busy(0.0, 5.0)
        assert meter.utilization(10.0) == pytest.approx(0.5)

    def test_serial_resource_queues_work(self):
        meter = BusyMeter(0.0)
        meter.add_busy(0.0, 5.0)
        meter.add_busy(0.0, 5.0)  # queues behind the first
        assert meter.busy_until == pytest.approx(10.0)
        assert meter.utilization(10.0) == pytest.approx(1.0)

    def test_utilization_capped_at_one(self):
        meter = BusyMeter(0.0)
        meter.add_busy(0.0, 100.0)
        assert meter.utilization(10.0) <= 1.0

    def test_future_work_not_counted(self):
        meter = BusyMeter(0.0)
        meter.add_busy(8.0, 4.0)  # runs 8..12
        assert meter.utilization(10.0) == pytest.approx(0.2)

    def test_reset_carries_overhang(self):
        meter = BusyMeter(0.0)
        meter.add_busy(0.0, 15.0)
        meter.reset(10.0)
        # 5 s of work overhangs into the new window.
        assert meter.utilization(15.0) == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BusyMeter(0.0).add_busy(0.0, -1.0)


class TestHistogram:
    def test_quantiles(self):
        hist = Histogram()
        hist.extend(range(1, 101))
        assert hist.quantile(0.0) == 1
        assert hist.quantile(1.0) == 100
        assert hist.quantile(0.5) == pytest.approx(50.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_bad_q_raises(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_single_sample(self):
        hist = Histogram()
        hist.add(42.0)
        assert hist.quantile(0.3) == 42.0
        assert hist.mean() == 42.0

    def test_count_above(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0, 4.0])
        assert hist.count_above(2.5) == 2
        assert hist.count_above(4.0) == 0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60))
    def test_quantile_bounds(self, values):
        hist = Histogram()
        hist.extend(values)
        q50 = hist.quantile(0.5)
        assert min(values) <= q50 <= max(values)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=60))
    def test_quantile_monotone(self, values):
        hist = Histogram()
        hist.extend(values)
        assert hist.quantile(0.25) <= hist.quantile(0.75)


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(0.0)
        for _ in range(10):
            meter.add(100)
        assert meter.snapshot(10.0) == pytest.approx(100.0)

    def test_snapshot_resets_window(self):
        meter = RateMeter(0.0)
        meter.add(100)
        meter.snapshot(10.0)
        assert meter.snapshot(20.0) == 0.0

    def test_total_is_cumulative(self):
        meter = RateMeter(0.0)
        meter.add(3)
        meter.snapshot(1.0)
        meter.add(4)
        assert meter.total == 7


class TestHelpers:
    def test_summarize_empty(self):
        assert summarize([])["n"] == 0

    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_percentile_none_for_empty(self):
        assert percentile([], 0.5) is None

    def test_percentile_value(self):
        assert percentile([1.0, 3.0], 0.5) == pytest.approx(2.0)
