"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.streams == 12
        assert not args.paper

    def test_capacity_defaults(self):
        args = build_parser().parse_args(["capacity"])
        assert args.cubs == 14


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--streams", "6", "--seconds", "12", "--files", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slots" in out
        assert "disk schedule" in out
        assert "cub 0" in out

    def test_failover_runs(self, capsys):
        code = main(
            ["failover", "--load", "0.4", "--seconds", "30", "--files", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failing cub" in out
        assert "mirror pieces sent" in out

    def test_capacity_paper_numbers(self, capsys):
        code = main(["capacity", "--cubs", "14", "--disks", "4"])
        assert code == 0
        out = capsys.readouterr().out
        # Derived from the disk model (the paper pinned its measured
        # 10.75 streams/disk -> 602; the model derives ~11 -> ~616).
        assert "56s ring" in out
        capacity_line = next(
            line for line in out.splitlines() if "system capacity" in line
        )
        streams = int(capacity_line.split(":")[1].split()[0])
        assert 560 <= streams <= 660

    def test_report_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        code = main(
            ["report", "--results", str(tmp_path), "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
