"""Tests for the partitioned (sharded) discrete-event kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import Runtime, TimerHandle
from repro.sim.core import SimulationError, Simulator
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW
from repro.sim.shard import ShardedSimulator


@pytest.fixture
def ssim():
    return ShardedSimulator(shards=4, lookahead=0.0005)


class TestConstruction:
    def test_satisfies_runtime_contract(self, ssim):
        assert isinstance(ssim, Runtime)
        handle = ssim.call_after(1.0, lambda: None)
        assert isinstance(handle, TimerHandle)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedSimulator(shards=0, lookahead=0.001)

    def test_rejects_nonpositive_lookahead(self):
        with pytest.raises(ValueError):
            ShardedSimulator(shards=2, lookahead=0.0)

    def test_pin_out_of_range(self, ssim):
        with pytest.raises(ValueError):
            ssim.pin("cub:0", 4)

    def test_unpinned_address_falls_to_lane_zero(self, ssim):
        assert ssim.lane_of("anything") == 0


class TestSingleHeapParity:
    """The sharded kernel must mirror Simulator.run semantics exactly."""

    def test_dispatch_order(self, ssim):
        fired = []
        ssim.call_after(2.0, fired.append, "late")
        ssim.call_after(1.0, fired.append, "early")
        ssim.run()
        assert fired == ["early", "late"]
        assert ssim.now == pytest.approx(2.0)

    def test_priority_breaks_ties(self, ssim):
        fired = []
        ssim.call_at(1.0, fired.append, "normal")
        ssim.call_at(1.0, fired.append, "low", priority=PRIORITY_LOW)
        ssim.call_at(1.0, fired.append, "high", priority=PRIORITY_HIGH)
        ssim.run()
        assert fired == ["high", "normal", "low"]

    def test_scheduling_in_past_raises(self, ssim):
        ssim.call_after(1.0, lambda: None)
        ssim.run()
        with pytest.raises(SimulationError):
            ssim.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, ssim):
        with pytest.raises(SimulationError):
            ssim.call_after(-0.1, lambda: None)

    def test_cancelled_event_does_not_fire(self, ssim):
        fired = []
        event = ssim.call_after(1.0, fired.append, "x")
        event.cancel()
        ssim.run()
        assert fired == []

    def test_run_until_advances_clock(self, ssim):
        ssim.run(until=7.0)
        assert ssim.now == pytest.approx(7.0)

    def test_until_with_max_events_keeps_clock_monotonic(self, ssim):
        fired = []
        for tag in range(5):
            ssim.call_after(float(tag + 1), fired.append, tag)
        ssim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert ssim.now == pytest.approx(2.0)
        ssim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert ssim.now == pytest.approx(10.0)

    def test_stop_aborts_run(self, ssim):
        fired = []
        ssim.call_after(1.0, fired.append, "a")
        ssim.call_after(2.0, ssim.stop)
        ssim.call_after(3.0, fired.append, "b")
        ssim.run()
        assert fired == ["a"]

    def test_pending_stop_consumed_by_next_run(self, ssim):
        fired = []
        ssim.call_after(1.0, fired.append, "a")
        ssim.stop()
        ssim.run()
        assert fired == []
        ssim.run()
        assert fired == ["a"]

    def test_run_is_not_reentrant(self, ssim):
        ssim.call_after(1.0, ssim.run)
        with pytest.raises(SimulationError):
            ssim.run()

    def test_step_and_peek(self, ssim):
        assert ssim.step() is False
        assert ssim.peek_time() is None
        ssim.call_after(1.5, lambda: None)
        assert ssim.peek_time() == pytest.approx(1.5)
        assert ssim.step() is True
        assert ssim.events_dispatched == 1


class TestLanePlacement:
    def test_call_at_node_routes_to_pinned_lane(self, ssim):
        ssim.pin("cub:3", 3)
        ssim.call_at_node("cub:3", 1.0, lambda: None)
        assert len(ssim.lanes[3].heap) == 1
        assert len(ssim.lanes[0].heap) == 0

    def test_dispatch_affinity_inherited(self, ssim):
        """Timers scheduled inside a callback stay on that lane."""
        ssim.pin("cub:2", 2)

        def chained():
            ssim.call_after(1.0, lambda: None)

        ssim.call_at_node("cub:2", 1.0, chained)
        ssim.run(max_events=1)
        assert len(ssim.lanes[2].heap) == 1

    def test_lane_event_accounting(self, ssim):
        ssim.pin("cub:1", 1)
        ssim.call_at_node("cub:1", 1.0, lambda: None)
        ssim.call_at(1.0, lambda: None)  # lane 0
        ssim.run()
        assert ssim.lanes[0].events_dispatched == 1
        assert ssim.lanes[1].events_dispatched == 1
        assert ssim.events_dispatched == 2


class TestBoundaryChannels:
    def test_cross_shard_send_counted_and_delivered(self, ssim):
        ssim.pin("a", 1)
        ssim.pin("b", 2)
        fired = []

        def from_a():
            # Lookahead-safe: arrival one full bound past now.
            ssim.call_at_node("b", ssim.now + 0.001, fired.append, "b")

        ssim.call_at_node("a", 1.0, from_a)
        ssim.run()
        assert fired == ["b"]
        assert ssim.cross_shard_messages == 1
        assert ssim.lookahead_violations == 0
        assert ssim.windows >= 1

    def test_lookahead_violation_counted_but_exact(self, ssim):
        ssim.pin("a", 1)
        ssim.pin("b", 2)
        fired = []

        def from_a():
            # Undercuts now + lookahead: a distributed run would have to
            # roll back; here it must be counted AND still fire at the
            # right time.
            ssim.call_at_node("b", ssim.now + 0.0001, fired.append, ssim.now)

        ssim.call_at_node("a", 1.0, from_a)
        ssim.run()
        assert len(fired) == 1
        assert ssim.lookahead_violations == 1
        assert ssim.now == pytest.approx(1.0001)

    def test_same_lane_send_skips_channel(self, ssim):
        ssim.pin("a", 1)
        ssim.pin("b", 1)
        fired = []

        def from_a():
            ssim.call_at_node("b", ssim.now + 0.0001, fired.append, "b")

        ssim.call_at_node("a", 1.0, from_a)
        ssim.run()
        assert fired == ["b"]
        assert ssim.cross_shard_messages == 0
        assert ssim.lookahead_violations == 0

    def test_null_messages_advance_silent_channels(self, ssim):
        # Two lanes trade events while the other two stay silent: the
        # silent lanes' channels must still advance their clocks.
        ssim.pin("a", 0)
        ssim.pin("b", 1)
        ssim.call_at_node("a", 1.0, lambda: None)
        ssim.call_at_node("b", 2.0, lambda: None)
        ssim.run()
        assert ssim.null_messages > 0
        for channel in ssim._channels.values():
            assert channel.clock > 0.0

    def test_cancelled_parked_event_dropped(self, ssim):
        ssim.pin("a", 1)
        ssim.pin("b", 2)
        fired = []
        handle = {}

        def from_a():
            handle["ev"] = ssim.call_at_node(
                "b", ssim.now + 0.001, fired.append, "b"
            )
            handle["ev"].cancel()

        ssim.call_at_node("a", 1.0, from_a)
        ssim.run()
        assert fired == []

    def test_shard_stats_shape(self, ssim):
        stats = ssim.shard_stats()
        assert stats["shards"] == 4
        assert len(stats["lane_events"]) == 4
        assert stats["lookahead_violations"] == 0


# ----------------------------------------------------------------------
# The kernel-level differential: any schedule/cancel/cross-send script
# dispatches identically on the single heap and on 1/2/4 lanes.
# ----------------------------------------------------------------------

_LOOKAHEAD = 0.05


def _run_script(kernel, pins, script):
    """Execute a schedule script; returns (firing order, final clock).

    Each script entry is ``(tick, address, kind)``: an event at ``tick``
    grid-time on ``address``'s lane.  ``kind`` selects what the callback
    does when it fires: nothing, schedule a local follow-up, or send a
    lookahead-safe cross-node event.
    """
    fired = []

    def make_cb(index, kind):
        def cb():
            fired.append((index, round(kernel.now, 6)))
            if kind == 1:
                kernel.call_after(0.1, fired.append, (index, "chain"))
        return cb

    # The single heap has no call_at_node; senders fall back to call_at.
    def make_sender(index, address):
        def cb():
            fired.append((index, round(kernel.now, 6)))
            target = pins[(pins.index(address) + 1) % len(pins)]
            when = kernel.now + _LOOKAHEAD
            send = getattr(kernel, "call_at_node", None)
            if send is None:
                kernel.call_at(when, fired.append, (index, "x"))
            else:
                send(target, when, fired.append, (index, "x"))
        return cb

    for index, (tick, address, kind) in enumerate(script):
        time = tick / 10.0
        if kind == 2:
            cb = make_sender(index, address)
        else:
            cb = make_cb(index, kind)
        send = getattr(kernel, "call_at_node", None)
        if send is None:
            kernel.call_at(time, cb)
        else:
            send(address, time, cb)
    kernel.run()
    return fired, round(kernel.now, 6)


@given(
    st.lists(
        st.tuples(
            st.integers(0, 40),      # time tick
            st.integers(0, 3),       # address index
            st.integers(0, 2),       # callback kind
        ),
        min_size=1,
        max_size=60,
    ),
    st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_sharded_matches_single_heap(script, shards):
    pins = [f"node:{i}" for i in range(4)]
    script = [(tick, pins[addr], kind) for tick, addr, kind in script]

    single = Simulator()
    expected = _run_script(single, pins, script)

    sharded = ShardedSimulator(shards=shards, lookahead=_LOOKAHEAD)
    for i, address in enumerate(pins):
        sharded.pin(address, i % shards)
    actual = _run_script(sharded, pins, script)

    assert actual == expected
    assert sharded.lookahead_violations == 0
