"""The open-loop arrival generator: determinism, shapes, validation.

Both backends schedule from these traces, so the properties under test
are exactly what ``--compare-sim`` leans on: the same ``(parameters,
seed)`` must yield the identical trace everywhere, rows must come out
time-sorted with dense client indices, and each mode must have its
advertised shape (deterministic ramp, Zipf long tail, flash burst).
"""

import math
import random

import pytest

from repro.workloads.arrivals import (
    ARRIVAL_MODES,
    DEFAULT_ZIPF_EXPONENT,
    Arrival,
    open_loop_trace,
)
from repro.workloads.popularity import ZipfSelector


def trace(**overrides):
    params = dict(
        viewers=200, num_files=16, start=1.0, end=31.0, seed=7, mode="zipf"
    )
    params.update(overrides)
    return open_loop_trace(**params)


@pytest.mark.parametrize("mode", ARRIVAL_MODES)
def test_same_seed_same_trace(mode):
    assert trace(mode=mode) == trace(mode=mode)


@pytest.mark.parametrize("mode", ["zipf", "flash"])
def test_different_seed_different_trace(mode):
    assert trace(mode=mode, seed=1) != trace(mode=mode, seed=2)


@pytest.mark.parametrize("mode", ARRIVAL_MODES)
def test_rows_sorted_dense_and_bounded(mode):
    rows = trace(mode=mode)
    assert len(rows) == 200
    assert [row.client_index for row in rows] == list(range(200))
    times = [row.time for row in rows]
    assert times == sorted(times)
    assert all(1.0 <= row.time < 31.0 for row in rows)
    assert all(0 <= row.file_index < 16 for row in rows)


def test_stagger_matches_legacy_ramp():
    # The default mode must stay bit-identical to the original
    # deterministic plan: fixed spacing, round-robin files.
    rows = trace(mode="stagger", viewers=10, num_files=4, start=2.0, end=12.0)
    assert rows == [
        Arrival(time=2.0 + index * 1.0, client_index=index,
                file_index=index % 4)
        for index in range(10)
    ]


def test_stagger_ignores_seed():
    assert trace(mode="stagger", seed=1) == trace(mode="stagger", seed=2)


def test_zipf_skews_toward_popular_ranks():
    rows = trace(mode="zipf", viewers=2000, num_files=16)
    counts = [0] * 16
    for row in rows:
        counts[row.file_index] += 1
    # Rank 0 should see close to its theoretical share and clearly more
    # than the tail rank.
    expected = ZipfSelector(
        16, DEFAULT_ZIPF_EXPONENT, random.Random(0)
    ).probability(0)
    assert math.isclose(counts[0] / 2000, expected, rel_tol=0.25)
    assert counts[0] > 3 * counts[15]


def test_flash_burst_piles_on_rank_zero_early():
    rows = trace(mode="flash", viewers=400, num_files=16,
                 start=5.0, end=65.0)
    spike = [row for row in rows if row.file_index == 0]
    # Half the viewers burst onto rank 0 (plus whatever the long tail
    # adds), and the burst clusters within a few spike scales of start.
    assert len(spike) >= 200
    early = [row for row in spike if row.time < 5.0 + 5.0]
    assert len(early) >= 200 * 0.9


def test_flash_spike_fraction_zero_degenerates_to_zipf():
    assert trace(mode="flash", spike_fraction=0.0) == trace(mode="zipf")


@pytest.mark.parametrize(
    "overrides, message",
    [
        (dict(viewers=-1), "non-negative"),
        (dict(num_files=0), "at least one file"),
        (dict(end=1.0), "empty arrival window"),
        (dict(mode="sawtooth"), "unknown arrival mode"),
        (dict(mode="flash", spike_fraction=1.5), "within"),
    ],
)
def test_bad_parameters_rejected(overrides, message):
    with pytest.raises(ValueError, match=message):
        trace(**overrides)


def test_zero_viewers_yields_empty_trace():
    assert trace(viewers=0) == []
