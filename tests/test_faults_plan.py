"""Tests for the declarative fault-plan layer (repro.faults.plan)."""

import pytest

from repro.faults.plan import (
    CUB_CRASH,
    CUB_RESTART,
    DISK_FAIL,
    DISK_RECOVER,
    NET_DROP,
    NET_ISOLATE,
    NET_PARTITION,
    FaultPlan,
    FaultSpec,
    parse_target,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("net.teleport", start=1.0, duration=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(NET_DROP, start=-1.0, duration=1.0)

    def test_window_kind_needs_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(NET_DROP, start=1.0, duration=0.0)

    def test_point_kind_allows_zero_duration(self):
        spec = FaultSpec(CUB_CRASH, start=5.0, target="cub:1")
        assert spec.end == pytest.approx(5.0)

    def test_end_and_params(self):
        spec = FaultSpec(
            NET_DROP, start=2.0, duration=3.0,
            params=(("message_kind", "data"), ("rate", 0.5)),
        )
        assert spec.end == pytest.approx(5.0)
        assert spec.get("rate") == 0.5
        assert spec.get("absent", "fallback") == "fallback"

    def test_describe_mentions_kind_and_window(self):
        windowed = FaultSpec(NET_DROP, start=2.0, duration=3.0)
        assert "net.drop" in windowed.describe()
        assert "[2s, 5s)" in windowed.describe()
        point = FaultSpec(CUB_CRASH, start=7.0, target="cub:2")
        assert "@7s" in point.describe()
        assert "cub:2" in point.describe()


class TestBuilders:
    def test_builders_chain(self):
        plan = (
            FaultPlan()
            .drop_messages(0.01, start=1.0, duration=5.0)
            .slow_disk(0, factor=2.0, start=2.0, duration=2.0)
            .crash_cub(1, at=3.0)
        )
        assert isinstance(plan, FaultPlan)
        assert len(plan.events) == 3

    def test_rate_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.drop_messages(1.5, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.duplicate_messages(-0.1, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.reorder_messages(0.5, shift=0.0, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.slow_disk(0, factor=0.0, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.crash_cub(0, at=1.0, restart_after=0.0)

    def test_crash_with_restart_folds_in_recovery(self):
        plan = FaultPlan().crash_cub(2, at=10.0, restart_after=5.0)
        kinds = [event.kind for event in plan.events]
        assert kinds == [CUB_CRASH, CUB_RESTART]
        assert plan.events[1].start == pytest.approx(15.0)
        assert plan.events[1].target == "cub:2"

    def test_fail_disk_with_recovery(self):
        plan = FaultPlan().fail_disk(3, at=4.0, recover_after=2.0)
        kinds = [event.kind for event in plan.events]
        assert kinds == [DISK_FAIL, DISK_RECOVER]
        assert plan.events[1].start == pytest.approx(6.0)

    def test_partition_and_isolate_targets(self):
        plan = (
            FaultPlan()
            .partition_link("cub:0", "cub:1", start=1.0, duration=2.0)
            .isolate_node("cub:2", start=3.0, duration=4.0)
        )
        assert plan.events[0].kind == NET_PARTITION
        assert plan.events[0].target == "link:cub:0->cub:1"
        assert plan.events[1].kind == NET_ISOLATE
        assert plan.events[1].target == "node:cub:2"


class TestQueries:
    def test_end_time(self):
        plan = (
            FaultPlan()
            .drop_messages(0.1, start=1.0, duration=5.0)
            .crash_cub(0, at=20.0)
        )
        assert plan.end_time() == pytest.approx(20.0)
        assert FaultPlan().end_time() == 0.0

    def test_event_partitions(self):
        plan = (
            FaultPlan()
            .drop_messages(0.1, start=0.0, duration=1.0)
            .isolate_node("cub:1", start=0.0, duration=1.0)
            .slow_disk(0, factor=2.0, start=0.0, duration=1.0)
            .crash_cub(1, at=1.0)
            .kill_controller(at=2.0, recover_after=1.0)
        )
        assert len(plan.network_events()) == 2
        assert len(plan.disk_events()) == 1
        assert len(plan.process_events()) == 3  # crash + kill + recover

    def test_describe_sorted_by_start(self):
        plan = FaultPlan().crash_cub(0, at=9.0).drop_messages(
            0.1, start=1.0, duration=2.0
        )
        lines = plan.describe().splitlines()
        assert lines[0].startswith("net.drop")
        assert lines[1].startswith("cub.crash")
        assert FaultPlan().describe() == "(no faults)"


class TestParseTarget:
    def test_numeric_targets(self):
        assert parse_target("disk:3", "disk") == 3
        assert parse_target("cub:12", "cub") == 12

    def test_link_target(self):
        assert parse_target("link:a->b", "link") == ("a", "b")

    def test_node_target(self):
        assert parse_target("node:cub:2", "node") == "cub:2"

    def test_malformed_targets_rejected(self):
        with pytest.raises(ValueError):
            parse_target(None, "disk")
        with pytest.raises(ValueError):
            parse_target("disk", "disk")
        with pytest.raises(ValueError):
            parse_target("disk:3", "cub")
        with pytest.raises(ValueError):
            parse_target("link:a", "link")
