"""Tests for the zoned disk model and simulated drives."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.drive import SimDisk
from repro.disk.failure import FailureEvent, FailurePlan
from repro.disk.model import (
    DiskParameters,
    unfailed_utilization_at_capacity,
    worst_case_streams_per_disk,
)
from repro.disk.zones import ULTRASTAR_LIKE, ZONE_INNER, ZONE_OUTER, ZoneGeometry
from repro.sim.rng import RngRegistry


class TestZoneGeometry:
    def test_outer_faster_than_inner(self):
        assert ULTRASTAR_LIKE.outer_rate > ULTRASTAR_LIKE.inner_rate

    def test_inner_faster_rejected(self):
        with pytest.raises(ValueError):
            ZoneGeometry(outer_rate=1e6, inner_rate=2e6)

    def test_transfer_time(self):
        geom = ZoneGeometry(outer_rate=1e6, inner_rate=0.5e6)
        assert geom.transfer_time(ZONE_OUTER, 1_000_000) == pytest.approx(1.0)
        assert geom.transfer_time(ZONE_INNER, 1_000_000) == pytest.approx(2.0)

    def test_unknown_zone_rejected(self):
        with pytest.raises(ValueError):
            ULTRASTAR_LIKE.rate("middle")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ULTRASTAR_LIKE.transfer_time(ZONE_OUTER, -1)


class TestDiskParameters:
    def test_expected_read_time_components(self):
        params = DiskParameters()
        expected = (
            params.mean_seek
            + params.rotational_latency
            + 250_000 / params.geometry.outer_rate
        )
        assert params.expected_read_time(ZONE_OUTER, 250_000) == pytest.approx(expected)

    def test_worst_case_exceeds_expected(self):
        params = DiskParameters()
        assert params.worst_case_read_time(ZONE_OUTER, 250_000) > params.expected_read_time(
            ZONE_OUTER, 250_000
        )

    def test_inner_zone_slower(self):
        params = DiskParameters()
        assert params.expected_read_time(ZONE_INNER, 250_000) > params.expected_read_time(
            ZONE_OUTER, 250_000
        )

    def test_bad_outlier_probability_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(outlier_probability=1.5)

    def test_bad_seek_config_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(min_seek=0.02, mean_seek=0.01)

    def test_sample_mean_close_to_expected(self, rngs):
        params = DiskParameters()
        rng = rngs.stream("sample")
        samples = [
            params.sample_read_time(rng, ZONE_OUTER, 250_000) for _ in range(3000)
        ]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(
            params.expected_read_time(ZONE_OUTER, 250_000), rel=0.02
        )

    def test_outliers_appear_at_configured_rate(self, rngs):
        params = DiskParameters(outlier_probability=0.2)
        rng = rngs.stream("outliers")
        baseline = params.worst_case_read_time(ZONE_OUTER, 250_000)
        samples = [
            params.sample_read_time(rng, ZONE_OUTER, 250_000) for _ in range(2000)
        ]
        outliers = sum(1 for sample in samples if sample > baseline + 0.1)
        assert 0.1 < outliers / len(samples) < 0.3

    @given(st.integers(10_000, 2_000_000))
    def test_sample_bounded_below_by_transfer(self, size):
        params = DiskParameters()
        rng = RngRegistry(0).stream("bound")
        sample = params.sample_read_time(rng, ZONE_OUTER, size)
        assert sample >= params.geometry.transfer_time(ZONE_OUTER, size)


class TestCapacityModel:
    """The §2.3/§5 capacity arithmetic."""

    def test_paper_streams_per_disk(self):
        """0.25 MB blocks, decluster 4 → about 10.75-11 streams/disk."""
        streams = worst_case_streams_per_disk(DiskParameters(), 250_000, 4)
        assert 10.4 < streams < 11.6

    def test_larger_decluster_more_streams(self):
        """Bigger decluster factor reserves less failed-mode bandwidth."""
        params = DiskParameters()
        assert worst_case_streams_per_disk(
            params, 250_000, 4
        ) > worst_case_streams_per_disk(params, 250_000, 2)

    def test_decluster_below_one_rejected(self):
        with pytest.raises(ValueError):
            worst_case_streams_per_disk(DiskParameters(), 250_000, 0)

    def test_unfailed_utilization_below_one(self):
        """Rated capacity reserves headroom for mirror reads."""
        util = unfailed_utilization_at_capacity(DiskParameters(), 250_000, 4)
        assert 0.5 < util < 0.85


class TestSimDisk:
    @pytest.fixture
    def disk(self, sim, rngs):
        return SimDisk(sim, "d0", DiskParameters(), rngs)

    def test_read_completes(self, sim, disk):
        done = []
        disk.read(250_000, ZONE_OUTER, done.append)
        sim.run()
        assert len(done) == 1
        assert done[0] > 0.04  # at least the transfer time

    def test_fifo_service(self, sim, disk):
        done = []
        disk.read(250_000, ZONE_OUTER, lambda t: done.append(("a", t)))
        disk.read(250_000, ZONE_OUTER, lambda t: done.append(("b", t)))
        sim.run()
        assert [tag for tag, _ in done] == ["a", "b"]
        assert done[1][1] > done[0][1]

    def test_utilization_tracks_busy(self, sim, disk):
        for _ in range(10):
            disk.read(250_000, ZONE_OUTER, lambda t: None)
        sim.run()
        assert disk.utilization() == pytest.approx(1.0, abs=0.01)

    def test_counters(self, sim, disk):
        disk.read(100_000, ZONE_OUTER, lambda t: None)
        sim.run()
        assert disk.reads_completed.count == 1
        assert disk.bytes_read.count == 100_000

    def test_failed_disk_errors_immediately(self, sim, disk):
        disk.fail()
        errors = []
        disk.read(100_000, ZONE_OUTER, lambda t: None, on_error=lambda: errors.append(1))
        sim.run()
        assert errors == [1]
        assert disk.reads_completed.count == 0

    def test_failure_mid_flight_errors(self, sim, disk):
        results = {"done": 0, "err": 0}
        disk.read(
            250_000,
            ZONE_OUTER,
            lambda t: results.__setitem__("done", 1),
            on_error=lambda: results.__setitem__("err", 1),
        )
        sim.call_at(0.001, disk.fail)
        sim.run()
        assert results == {"done": 0, "err": 1}

    def test_recovery_allows_reads(self, sim, disk):
        disk.fail()
        disk.recover()
        done = []
        disk.read(100_000, ZONE_OUTER, done.append)
        sim.run()
        assert len(done) == 1

    def test_queue_backlog(self, sim, disk):
        disk.read(250_000, ZONE_OUTER, lambda t: None)
        assert disk.queue_backlog > 0.0

    def test_nonpositive_read_rejected(self, sim, disk):
        with pytest.raises(ValueError):
            disk.read(0, ZONE_OUTER, lambda t: None)

    def test_inner_reads_slower_on_average(self, sim, rngs):
        disk = SimDisk(sim, "dz", DiskParameters(), rngs)
        times = {"outer": [], "inner": []}
        for _ in range(50):
            start = sim.now
            disk.read(250_000, ZONE_OUTER, lambda t, s=start: times["outer"].append(t - s))
            sim.run()
            start = sim.now
            disk.read(250_000, ZONE_INNER, lambda t, s=start: times["inner"].append(t - s))
            sim.run()
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(times["inner"]) > mean(times["outer"])


class TestFailurePlan:
    def test_parse_sorted(self):
        plan = FailurePlan()
        plan.fail_cub(3, at=10.0)
        plan.fail_disk(7, at=5.0)
        decoded = plan.parse()
        assert decoded[0] == (5.0, "disk", 7, "fail")
        assert decoded[1] == (10.0, "cub", 3, "fail")

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(0.0, "cub:1", "explode")

    def test_bad_component_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(0.0, "router:1", "fail")

    def test_install_applies_events(self, sim):
        class FakeSystem:
            def __init__(self):
                self.calls = []

            def fail_cub(self, index):
                self.calls.append(("fail_cub", index, sim.now))

            def recover_cub(self, index):
                self.calls.append(("recover_cub", index, sim.now))

        system = FakeSystem()
        plan = FailurePlan().fail_cub(2, at=1.0).recover_cub(2, at=3.0)
        plan.install(sim, system)
        sim.run()
        assert system.calls == [("fail_cub", 2, 1.0), ("recover_cub", 2, 3.0)]

    def test_install_immediate_for_past_events(self, sim):
        class FakeSystem:
            def __init__(self):
                self.calls = []

            def fail_cub(self, index):
                self.calls.append(index)

        system = FakeSystem()
        FailurePlan().fail_cub(1, at=0.0).install(sim, system)
        assert system.calls == [1]
