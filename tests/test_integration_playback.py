"""End-to-end playback through the full distributed system."""

import pytest

from repro import TigerSystem, small_config


class TestSingleStream:
    def test_all_blocks_delivered_in_order(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(95.0)  # file is 90 s long
        monitor = client.streams[instance]
        assert monitor.finished
        assert monitor.blocks_received == monitor.num_blocks
        assert monitor.blocks_missed == 0
        assert monitor.blocks_late == 0

    def test_blocks_arrive_one_per_block_play_time(self, small_system):
        from repro.core.protocol import BlockData

        client = small_system.add_client()
        arrivals = []
        original = client.handle_message

        def spy(message):
            if isinstance(message.payload, BlockData):
                arrivals.append(small_system.sim.now)
            original(message)

        client.handle_message = spy
        client.start_stream(file_id=0)
        small_system.run_for(20.0)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap == pytest.approx(1.0, abs=0.05) for gap in gaps)

    def test_startup_latency_floor(self, small_system):
        """§5/Figure 10: the floor is about one block play time of
        transmission plus scheduling lead and network latency."""
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        latency = client.streams[instance].startup_latency
        config = small_system.config
        assert latency is not None
        assert latency >= config.block_play_time  # transmission alone
        assert latency < config.block_play_time + config.scheduling_lead + 1.5

    def test_blocks_come_from_consecutive_cubs(self, small_system):
        """The lockstep striping property, observed at the wire."""
        sources = []
        hook = lambda message, when: sources.append(message.src) if message.kind == "data" else None
        small_system.network.add_delivery_hook(hook)
        client = small_system.add_client()
        client.start_stream(file_id=0)
        small_system.run_for(12.0)
        cub_ids = [int(src.split(":")[1]) for src in sources]
        for first, second in zip(cub_ids, cub_ids[1:]):
            assert second == (first + 1) % small_system.config.num_cubs

    def test_mid_file_start(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0, first_block=50)
        small_system.run_for(45.0)
        monitor = client.streams[instance]
        assert monitor.finished
        assert monitor.blocks_received == monitor.num_blocks - 50


class TestManyStreams:
    def test_full_capacity_no_losses(self, small_system):
        clients = small_system.add_clients(2)
        capacity = small_system.config.num_slots
        for index in range(capacity):
            clients[index % 2].start_stream(file_id=index % 6)
        small_system.run_for(45.0)
        small_system.finalize_clients()
        assert small_system.oracle.num_occupied == capacity
        assert small_system.total_client_missed() == 0
        assert small_system.total_client_late() == 0
        small_system.assert_invariants()

    def test_over_capacity_queues_rather_than_conflicts(self, small_system):
        client = small_system.add_client()
        capacity = small_system.config.num_slots
        for index in range(capacity + 6):
            client.start_stream(file_id=index % 6)
        small_system.run_for(30.0)
        # Exactly capacity admitted; the rest wait (no double booking —
        # the oracle would have raised).
        assert small_system.oracle.num_occupied == capacity
        queued = sum(cub.queued_start_requests() for cub in small_system.cubs)
        assert queued == 6

    def test_queued_viewers_admitted_after_eof(self):
        system = TigerSystem(small_config(), seed=3)
        system.add_standard_content(num_files=4, duration_s=30)
        client = system.add_client()
        capacity = system.config.num_slots
        for index in range(capacity + 4):
            client.start_stream(file_id=index % 4)
        system.run_for(70.0)  # first wave EOFs at ~31 s
        admitted = sum(
            1 for monitor in client.all_monitors() if monitor.startup_latency is not None
        )
        assert admitted == capacity + 4

    def test_same_file_all_viewers(self, small_system):
        """Striping spreads a single hot file across all components."""
        client = small_system.add_client()
        for _ in range(12):
            client.start_stream(file_id=0)
        small_system.run_for(25.0)
        utils = [cub.mean_disk_utilization() for cub in small_system.cubs]
        assert max(utils) < 3 * (sum(utils) / len(utils) + 1e-9)

    def test_eof_frees_slots(self):
        system = TigerSystem(small_config(), seed=5)
        system.add_standard_content(num_files=4, duration_s=20)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        system.run_for(50.0)
        assert system.oracle.num_occupied == 0

    def test_view_sizes_stay_bounded_under_load(self, small_system):
        client = small_system.add_client()
        for index in range(20):
            client.start_stream(file_id=index % 6)
        small_system.run_for(60.0)
        for cub in small_system.cubs:
            assert cub.view.size() < 600
