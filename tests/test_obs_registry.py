"""Tests for the dimensional metrics registry."""

import json

import pytest

from repro.obs.registry import (
    CounterSeries,
    MetricError,
    MetricsRegistry,
)
from repro.sim import stats


class TestCounter:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        a = registry.counter("x.sent", help="h", unit="u", cub=3)
        b = registry.counter("x.sent", cub=3)
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x.sent", cub=0)
        b = registry.counter("x.sent", cub=1)
        assert a is not b
        a.increment(5)
        b.increment(2)
        assert registry.get_value("x.sent", cub=0) == 5
        assert registry.get_value("x.sent", cub=1) == 2

    def test_counter_is_a_stats_counter(self):
        # Protocol code (and the chaos fingerprint) reads `.count`; the
        # registry handle must keep the exact legacy surface.
        handle = MetricsRegistry().counter("x.sent")
        assert isinstance(handle, stats.Counter)
        handle.increment()
        handle.increment(3)
        assert handle.count == 4
        assert handle.value() == 4

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x.sent", cub=1, slot=2)
        b = registry.counter("x.sent", slot=2, cub=1)
        assert a is b


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("x.level", unit="ratio")
        gauge.set(0.5)
        assert gauge.value() == 0.5
        gauge.add(0.25)
        assert gauge.value() == 0.75
        gauge.set(-1.0)  # gauges may go down
        assert registry.get_value("x.level") == -1.0


class TestHistogram:
    def test_observe_and_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("x.latency", unit="s")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.value()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0
        assert summary["p50"] <= summary["p95"] <= summary["max"]


class TestFamilySemantics:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x.thing")
        with pytest.raises(MetricError):
            registry.gauge("x.thing")

    def test_reserved_overflow_label_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("x.sent", overflow="true")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.x")
        registry.gauge("a.y")
        assert registry.names() == ["a.y", "b.x"]


class TestCardinalityGuard:
    def test_overflow_collapses_not_raises(self):
        registry = MetricsRegistry(max_series_per_family=4)
        handles = [registry.counter("x.sent", cub=i) for i in range(10)]
        # The first 4 label sets got real series; the rest share one
        # overflow series, so hot paths never blow up on cardinality.
        assert len({id(h) for h in handles[:4]}) == 4
        assert len({id(h) for h in handles[4:]}) == 1
        assert handles[4] is handles[9]
        assert handles[4].labels == {"overflow": "true"}
        assert registry.series_overflowed == 6

    def test_overflow_series_in_snapshot(self):
        registry = MetricsRegistry(max_series_per_family=2)
        for i in range(5):
            registry.counter("x.sent", cub=i).increment()
        snapshot = registry.snapshot()
        series = snapshot["x.sent"]["series"]
        assert series[-1]["labels"] == {"overflow": "true"}
        assert series[-1]["value"] == 3
        total = sum(entry["value"] for entry in series)
        assert total == 5  # nothing lost, only dimensionality


class TestSnapshot:
    def test_structure_and_json(self):
        registry = MetricsRegistry()
        registry.counter("x.sent", help="blocks out", unit="blocks", cub=1).increment(7)
        registry.gauge("x.load", unit="ratio").set(0.25)
        snapshot = registry.snapshot()
        assert snapshot["x.sent"]["kind"] == "counter"
        assert snapshot["x.sent"]["help"] == "blocks out"
        assert snapshot["x.sent"]["unit"] == "blocks"
        assert snapshot["x.sent"]["series"] == [
            {"labels": {"cub": "1"}, "value": 7}
        ]
        parsed = json.loads(registry.to_json())
        assert parsed["x.load"]["series"][0]["value"] == 0.25

    def test_get_value_missing_series(self):
        registry = MetricsRegistry()
        registry.counter("x.sent", cub=1)
        assert registry.get_value("x.sent", cub=99) is None
        assert registry.get_value("no.such.family") is None


class TestSystemWiring:
    def test_cub_counters_live_in_system_registry(self):
        from repro import TigerSystem, small_config

        system = TigerSystem(small_config(), seed=0)
        cub = system.cubs[0]
        assert isinstance(cub.blocks_sent, CounterSeries)
        assert cub.blocks_sent is system.registry.counter(
            "cub.blocks_sent", cub=0
        )
        cub.blocks_sent.increment()
        assert system.registry.get_value("cub.blocks_sent", cub=0) == 1

    def test_export_metrics_publishes_gauges(self):
        from repro import TigerSystem, small_config

        system = TigerSystem(small_config(), seed=0)
        registry = system.export_metrics()
        assert registry is system.registry
        for name in (
            "net.messages_delivered",
            "oracle.load",
            "trace.dropped",
            "sim.events_dispatched",
            "cub.cpu_utilization",
        ):
            assert name in registry.names()


class TestMergeSnapshots:
    """Cross-registry merging (live cluster, partitioned bench tiers)."""

    def test_counters_sum_and_gauges_last_win(self):
        from repro.obs.registry import merge_snapshots

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x.sent", cub=0).increment(3)
        b.counter("x.sent", cub=0).increment(4)
        a.gauge("x.level").set(1.0)
        b.gauge("x.level").set(9.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["x.sent"]["series"][0]["value"] == 7
        assert merged["x.level"]["series"][0]["value"] == 9.0

    def test_two_overflowed_registries_merge_without_double_count(self):
        """Regression: both nodes collapsed into their overflow series.

        The overflow rows share the reserved label set, so they must
        combine exactly once — the merged total equals the sum of every
        increment on either node, nothing dropped, nothing doubled.
        """
        from repro.obs.registry import merge_snapshots

        a = MetricsRegistry(max_series_per_family=2)
        b = MetricsRegistry(max_series_per_family=2)
        for i in range(5):
            a.counter("x.sent", cub=i).increment()        # 3 overflowed
            b.counter("x.sent", cub=i + 100).increment()  # 3 overflowed
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        series = merged["x.sent"]["series"]
        overflow_rows = [
            row for row in series if row["labels"] == {"overflow": "true"}
        ]
        assert len(overflow_rows) == 1
        assert overflow_rows[0]["value"] == 6
        assert sum(row["value"] for row in series) == 10

    def test_merged_overflow_row_stays_last(self):
        """Regression: a second snapshot's plain rows used to append
        after the first snapshot's overflow row, breaking the
        overflow-last contract :meth:`MetricsRegistry.snapshot` gives
        every downstream consumer."""
        from repro.obs.registry import merge_snapshots

        a = MetricsRegistry(max_series_per_family=2)
        for i in range(4):
            a.counter("x.sent", cub=i).increment()
        b = MetricsRegistry(max_series_per_family=8)
        a_keys = {0, 1}
        for i in range(4, 8):
            b.counter("x.sent", cub=i).increment()
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        series = merged["x.sent"]["series"]
        assert series[-1]["labels"] == {"overflow": "true"}
        assert all(
            row["labels"] != {"overflow": "true"} for row in series[:-1]
        )
        assert {row["labels"].get("cub") for row in series[:-1]} >= {
            str(i) for i in a_keys
        }

    def test_histograms_sum_per_contract(self):
        """Regression: histogram series were last-wins despite the
        documented merge semantics; counts must add and the summary
        stats must reflect both sides."""
        from repro.obs.registry import merge_snapshots

        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            a.histogram("x.latency").observe(value)
        for value in (10.0, 20.0):
            b.histogram("x.latency").observe(value)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        value = merged["x.latency"]["series"][0]["value"]
        assert value["count"] == 5
        assert value["mean"] == pytest.approx((1 + 2 + 3 + 10 + 20) / 5)
        assert value["max"] == 20.0
