"""Resource-accounting integration tests: NICs, index memory, cache of
derived capacity — the quantities §2-§3 budget against."""

import pytest

from repro import TigerSystem, paper_config, small_config
from repro.storage.blockindex import INDEX_ENTRY_BYTES


class TestNicBudgets:
    def test_cub_nic_utilization_matches_stream_share(self):
        """At N streams per cub of rate r, the NIC's serialization share
        is N*r/line_rate (§3.2's quantity)."""
        system = TigerSystem(small_config(), seed=71)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        for index in range(16):  # 4 streams/cub at 2 Mbit/s
            client.start_stream(file_id=index % 4)
        system.run_for(10.0)
        for cub in system.cubs:
            system.network.nic(cub.address).busy.reset(system.sim.now)
        system.run_for(10.0)
        expected = 4 * 2e6 / system.config.cub_nic_bps
        for cub in system.cubs:
            measured = system.network.nic(cub.address).utilization(system.sim.now)
            assert measured == pytest.approx(expected, rel=0.3)

    def test_nic_never_oversubscribed_at_capacity(self):
        """The schedule's purpose: full load must not overrun any NIC."""
        system = TigerSystem(small_config(), seed=72)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        for index in range(system.config.num_slots):
            client.start_stream(file_id=index % 4)
        system.run_for(25.0)
        for cub in system.cubs:
            util = system.network.nic(cub.address).utilization(system.sim.now)
            assert util < 1.0

    def test_controller_nic_negligible(self):
        """The controller moves requests, not data (§2.1)."""
        system = TigerSystem(small_config(), seed=73)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        for index in range(16):
            client.start_stream(file_id=index % 4)
        system.run_for(15.0)
        util = system.network.nic("controller").utilization(system.sim.now)
        assert util < 0.01


class TestIndexMemory:
    def test_index_memory_matches_64bit_entry_model(self):
        """§4.1.1: in-memory metadata at 64 bits per entry.  Per cub:
        (blocks on its disks) primaries + decluster x as many pieces."""
        system = TigerSystem(small_config(), seed=74)
        entry = system.add_file("movie", duration_s=80)
        blocks_per_cub = {}
        for block in range(entry.num_blocks):
            cub = system.layout.cub_of_block(entry.start_disk, block)
            blocks_per_cub[cub] = blocks_per_cub.get(cub, 0) + 1
        for cub_id, index in enumerate(system.indexes):
            assert index.num_primary_entries == blocks_per_cub.get(cub_id, 0)
            expected_bytes = (
                index.num_primary_entries + index.num_secondary_entries
            ) * INDEX_ENTRY_BYTES
            assert index.memory_bytes() == expected_bytes

    def test_secondary_entries_are_decluster_fold(self):
        system = TigerSystem(small_config(), seed=75)
        system.add_file("movie", duration_s=80)
        total_primary = sum(ix.num_primary_entries for ix in system.indexes)
        total_secondary = sum(ix.num_secondary_entries for ix in system.indexes)
        assert total_secondary == total_primary * system.config.decluster

    def test_paper_scale_index_is_small(self):
        """A 56-disk Tiger holding an hour of content indexes in a few
        hundred KB of RAM — the paper's justification for keeping it
        in memory."""
        system = TigerSystem(paper_config(), seed=76)
        system.add_file("one-hour-movie", duration_s=3600)
        total = sum(index.memory_bytes() for index in system.indexes)
        assert total == 3600 * (1 + 4) * INDEX_ENTRY_BYTES
        assert total < 512 * 1024


class TestDerivedCapacity:
    def test_block_service_time_lengthened_to_fit(self):
        """§3.1: if the schedule is not an integral multiple of the
        service time, the service time is lengthened."""
        config = paper_config()
        raw_bst = config.block_play_time / config.streams_per_disk
        assert config.block_service_time >= raw_bst - 1e-12
        slots = config.schedule_duration / config.block_service_time
        assert slots == pytest.approx(round(slots))

    def test_capacity_scales_with_disks(self):
        base = paper_config()
        double = paper_config(disks_per_cub=8)
        assert double.num_slots == 2 * base.num_slots

    def test_storage_capacity_paper_figure(self):
        """"This 56 disk Tiger system is capable of storing slightly
        more than 64 hours of content at 2 Mbit/s."  Mirroring stores
        every bit twice (primary outer half + declustered secondary
        inner half), so usable content is half of each 2.5 GB disk:
        56 x 1.25e9 x 8 / 2e6 / 3600 = ~78 h raw, a little above the
        paper's 64 h once metadata/slack is taken — same order."""
        disk_bytes = 2.5e9
        hours = 56 * (disk_bytes / 2) * 8 / 2e6 / 3600
        assert 60 < hours < 90
