"""Integration tests for stop-play / deschedule (§4.1.2)."""




class TestStopPlaying:
    def test_stop_mid_play_halts_delivery(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(10.0)
        received_before = client.streams[instance].blocks_received
        client.stop_stream(instance)
        small_system.run_for(15.0)
        received_after = client.streams[instance].blocks_received
        # At most a couple of in-flight blocks after the stop.
        assert received_after - received_before <= 3

    def test_stop_frees_slot_in_oracle(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        assert small_system.oracle.num_occupied == 1
        client.stop_stream(instance)
        small_system.run_for(5.0)
        assert small_system.oracle.num_occupied == 0

    def test_freed_slot_reusable(self, small_system):
        client = small_system.add_client()
        capacity = small_system.config.num_slots
        instances = [
            client.start_stream(file_id=index % 6) for index in range(capacity)
        ]
        small_system.run_for(15.0)
        assert small_system.oracle.num_occupied == capacity
        client.stop_stream(instances[0])
        small_system.run_for(5.0)
        newcomer = client.start_stream(file_id=1)
        small_system.run_for(15.0)
        assert client.streams[newcomer].startup_latency is not None
        small_system.assert_invariants()

    def test_stop_before_scheduled_cancels_queue(self, small_system):
        """Stopping a viewer still waiting in a cub queue withdraws it."""
        client = small_system.add_client()
        capacity = small_system.config.num_slots
        for index in range(capacity):
            client.start_stream(file_id=index % 6)
        small_system.run_for(12.0)
        waiting = client.start_stream(file_id=0)  # queues: schedule full
        small_system.run_for(1.0)
        client.stop_stream(waiting)
        small_system.run_for(5.0)
        assert sum(cub.queued_start_requests() for cub in small_system.cubs) == 0
        assert client.streams[waiting].blocks_received == 0

    def test_stop_is_idempotent(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        client.stop_stream(instance)
        client.stop_stream(instance)
        small_system.run_for(5.0)
        assert small_system.oracle.num_occupied == 0
        small_system.assert_invariants()

    def test_deschedule_does_not_kill_restarted_play(self, small_system):
        """A new instance of the same viewer in the same slot must not
        be removed by the old instance's deschedule — the 'instance'
        semantics of §4.1.2."""
        client = small_system.add_client()
        first = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        client.stop_stream(first)
        second = client.start_stream(file_id=1)
        small_system.run_for(20.0)
        monitor = client.streams[second]
        assert monitor.blocks_received >= 10
        assert monitor.blocks_missed == 0

    def test_tombstones_do_not_leak(self, small_system):
        client = small_system.add_client()
        for round_index in range(6):
            instance = client.start_stream(file_id=round_index % 6)
            small_system.run_for(4.0)
            client.stop_stream(instance)
        small_system.run_for(30.0)
        for cub in small_system.cubs:
            assert cub.view.size() < 120

    def test_server_stops_spending_resources(self, small_system):
        """After a deschedule propagates, cubs stop reading/sending."""
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(10.0)
        client.stop_stream(instance)
        small_system.run_for(6.0)
        sent_at_stop = small_system.total_blocks_sent()
        small_system.run_for(20.0)
        assert small_system.total_blocks_sent() == sent_at_stop
