"""Tests for the workload drivers and metrics collection."""

import pytest

from repro import TigerSystem, small_config
from repro.workloads import ContinuousWorkload, RampDriver, StartupLatencyProbe
from repro.workloads.startup import StartupResult


def build_system(seed=3, duration=120.0):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=6, duration_s=duration)
    return system


class TestContinuousWorkload:
    def test_requires_content(self):
        system = TigerSystem(small_config())
        with pytest.raises(ValueError):
            ContinuousWorkload(system)

    def test_add_streams_starts_them(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        workload.add_streams(8)
        system.run_for(10.0)
        assert system.oracle.num_occupied == 8
        assert workload.target == 8

    def test_clients_provisioned_automatically(self):
        system = build_system()
        workload = ContinuousWorkload(system, streams_per_client=4)
        workload.add_streams(10)
        assert len(system.clients) == 3

    def test_eof_restarts_keep_population(self):
        system = build_system(duration=25.0)
        workload = ContinuousWorkload(system)
        workload.add_streams(6)
        system.run_for(70.0)  # two EOF generations
        # Population stays near target (modulo restart latency).
        assert system.oracle.num_occupied >= 4
        monitors = workload.all_monitors()
        assert len(monitors) > 6  # restarts created new instances

    def test_startup_latencies_collected(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        workload.add_streams(5)
        system.run_for(10.0)
        latencies = workload.startup_latencies()
        assert len(latencies) == 5
        assert all(lat > 0 for lat in latencies)


class TestRampDriver:
    def test_step_sizes_match_paper_pattern(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        metrics = system.metrics()
        driver = RampDriver(
            system, workload, metrics, target_streams=62, streams_per_step=30,
        )
        assert driver.step_sizes() == [30, 30, 2]

    def test_ramp_produces_one_sample_per_step(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        metrics = system.metrics()
        driver = RampDriver(
            system,
            workload,
            metrics,
            target_streams=24,
            streams_per_step=8,
            settle_time=2.0,
            measure_time=3.0,
        )
        result = driver.run()
        assert len(result.samples) == 3
        streams = result.streams()
        assert streams == sorted(streams)
        assert streams[-1] >= 20

    def test_cub_load_grows_with_streams(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        metrics = system.metrics()
        driver = RampDriver(
            system, workload, metrics,
            target_streams=30, streams_per_step=10,
            settle_time=2.0, measure_time=4.0,
        )
        result = driver.run()
        cpu = result.series("cub_cpu_mean")
        assert cpu[-1] > cpu[0]

    def test_invalid_times_rejected(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        with pytest.raises(ValueError):
            RampDriver(system, workload, system.metrics(), measure_time=0.0)


class TestStartupProbe:
    def test_probe_collects_load_latency_pairs(self):
        system = build_system()
        workload = ContinuousWorkload(system)
        probe = StartupLatencyProbe(system, workload, probe_timeout=30.0)
        result = probe.run_ramp(step=8, target=24, settle=6.0)
        assert len(result.samples) >= 20
        assert all(0 < sample.latency < 60 for sample in result.samples)
        assert all(0 <= sample.schedule_load <= 1 for sample in result.samples)

    def test_band_means(self):
        result = StartupResult()
        from repro.workloads.startup import StartSample

        result.samples = [StartSample(0.2, 2.0), StartSample(0.9, 6.0)]
        assert result.mean_latency_in_band(0.0, 0.5) == pytest.approx(2.0)
        assert result.mean_latency_in_band(0.5, 1.0) == pytest.approx(6.0)
        assert result.mean_latency_in_band(0.99, 1.0) is None


class TestMetrics:
    def test_sample_fields_populated(self):
        system = build_system()
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 6)
        metrics = system.metrics()
        system.run_for(8.0)
        metrics.begin_window()
        system.run_for(5.0)
        sample = metrics.sample("t")
        assert sample.active_streams == 8
        assert 0 < sample.cub_cpu_mean < 1
        assert 0 < sample.disk_util_mean < 1
        assert sample.control_traffic_bps > 0
        assert sample.blocks_sent > 0

    def test_probe_disk_cubs_filter(self):
        system = build_system()
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 6)
        metrics = system.metrics(probe_disk_cubs=[2])
        system.run_for(8.0)
        metrics.begin_window()
        system.run_for(5.0)
        sample = metrics.sample()
        expected = system.cubs[2].mean_disk_utilization()
        assert sample.disk_util_probe == pytest.approx(expected, rel=0.05)

    def test_table_rows(self):
        system = build_system()
        metrics = system.metrics()
        system.run_for(2.0)
        metrics.sample("a")
        metrics.sample("b")
        rows = metrics.table()
        assert len(rows) == 2
        assert "cub_cpu" in rows[0]

    def test_failed_probe_cub_reports_zero_traffic(self):
        system = build_system()
        metrics = system.metrics(probe_cub=1)
        system.start()
        system.run_for(3.0)
        system.fail_cub(1)
        metrics.begin_window()
        system.run_for(3.0)
        assert metrics.sample().control_traffic_bps == 0.0


class TestConfig:
    def test_paper_preset(self):
        from repro import paper_config

        config = paper_config()
        assert config.num_disks == 56
        assert config.num_slots == 602
        assert config.block_bytes == 250_000
        assert config.block_service_time == pytest.approx(56.0 / 602)
        assert config.mirror_piece_bytes() == 62_500

    def test_overrides(self):
        from repro import paper_config

        config = paper_config(decluster=2)
        assert config.decluster == 2
        assert config.num_cubs == 14

    def test_validation_rules(self):
        from repro.config import TigerConfig

        with pytest.raises(ValueError):
            TigerConfig(num_cubs=2)
        with pytest.raises(ValueError):
            TigerConfig(min_vstate_lead=9.0, max_vstate_lead=4.0)
        with pytest.raises(ValueError):
            TigerConfig(scheduling_lead=5.0)
        with pytest.raises(ValueError):
            TigerConfig(decluster=14, num_cubs=14)
        with pytest.raises(ValueError):
            TigerConfig(forward_pump_interval=6.0)

    def test_derived_capacity_without_override(self):
        from repro.config import TigerConfig

        config = TigerConfig(streams_per_disk_override=None)
        assert config.streams_per_disk > 0
        assert config.num_slots == int(config.num_disks * config.streams_per_disk)
