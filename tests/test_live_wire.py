"""Wire-format tests: every payload round-trips, every mangling rejects.

The round-trip half is property-style: instances of every registered
payload type are synthesized from their type hints with seeded
randomness (several per type), encoded to frame bytes, decoded back,
and compared for exact equality — so adding a payload type to the
registry automatically extends the test, and a codec that silently
loses a field or narrows a float fails here first.
"""

import dataclasses
import random
import struct
import typing

import pytest

from repro.core.protocol import BlockData, ViewerStateBatch, block_pattern
from repro.core.viewerstate import MirrorViewerState, ViewerState
from repro.live.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    FrameDecoder,
    WireError,
    WireStats,
    binary_message_frame,
    choose_codec,
    control_frame,
    decode_frames,
    decode_payload,
    encode_message,
    encode_payload,
    message_frame,
    parse_frame,
    register_payload,
    registered_payload_types,
)
from repro.net.message import Message
from repro.obs.registry import MetricsRegistry, snapshot_total

REGISTRY = registered_payload_types()


# ----------------------------------------------------------------------
# Property-style instance synthesis from type hints
# ----------------------------------------------------------------------
def _synthesize(hint, rng: random.Random, depth: int = 0):
    origin = typing.get_origin(hint)
    if origin is typing.Union:  # Optional[X]
        choices = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if rng.random() < 0.3:
            return None
        return _synthesize(rng.choice(choices), rng, depth)
    if origin is tuple:
        args = typing.get_args(hint)
        element = args[0] if args else int
        count = rng.randrange(0, 4) if depth < 2 else 0
        return tuple(_synthesize(element, rng, depth + 1) for _ in range(count))
    if hint is bool:
        return rng.random() < 0.5
    if hint is int:
        return rng.randrange(-(10**9), 10**12)
    if hint is float:
        # Mix of magnitudes, including values with no short repr.
        return rng.choice(
            [0.0, -1.5, rng.uniform(-1e6, 1e6), rng.random() * 1e-9]
        )
    if hint is str:
        return "".join(
            rng.choice("abc:#/0123 é☃") for _ in range(rng.randrange(0, 12))
        )
    if dataclasses.is_dataclass(hint):
        return _instance_of(hint, rng, depth + 1)
    raise AssertionError(f"no synthesizer for type hint {hint!r}")


def _instance_of(cls, rng: random.Random, depth: int = 0):
    hints = typing.get_type_hints(cls)
    kwargs = {
        field.name: _synthesize(hints[field.name], rng, depth)
        for field in dataclasses.fields(cls)
    }
    return cls(**kwargs)


@pytest.mark.parametrize("tag", sorted(REGISTRY))
def test_payload_round_trips(tag):
    cls = REGISTRY[tag]
    for seed in range(20):
        original = _instance_of(cls, random.Random(f"{tag}-{seed}"))
        assert decode_payload(encode_payload(original)) == original


@pytest.mark.parametrize("tag", sorted(REGISTRY))
def test_message_frame_round_trips(tag):
    cls = REGISTRY[tag]
    for seed in range(5):
        rng = random.Random(f"msg-{tag}-{seed}")
        message = Message(
            src=f"cub:{rng.randrange(16)}",
            dst="controller",
            payload=_instance_of(cls, rng),
            size_bytes=rng.randrange(1, 10**6),
            kind=rng.choice(["control", "data"]),
        )
        frames = list(decode_frames(message_frame(message)))
        assert len(frames) == 1
        kind, decoded = frames[0]
        assert kind == "msg"
        assert decoded.src == message.src
        assert decoded.dst == message.dst
        assert decoded.kind == message.kind
        assert decoded.size_bytes == message.size_bytes
        assert decoded.msg_id == message.msg_id
        assert decoded.payload == message.payload


def test_nested_batch_round_trips_exactly():
    batch = ViewerStateBatch(
        states=tuple(
            ViewerState(f"client:0#{i}", i, i * 3, 1, i, i % 8, 1.5 * i, i)
            for i in range(5)
        ),
        mirrors=(
            MirrorViewerState("client:1#9", 9, 4, 2, 7, 1, 2, 3, 8.25, 7),
        ),
    )
    assert decode_payload(encode_payload(batch)) == batch


def test_decoder_accepts_arbitrary_chunk_boundaries():
    rng = random.Random(7)
    messages = [
        Message("cub:0", "cub:1", _instance_of(REGISTRY["vstate"], rng), 100)
        for _ in range(10)
    ]
    stream = b"".join(message_frame(m) for m in messages)
    decoder = FrameDecoder()
    bodies = []
    position = 0
    while position < len(stream):
        step = rng.randrange(1, 7)
        bodies.extend(decoder.feed(stream[position:position + step]))
        position += step
    decoder.assert_drained()
    decoded = [parse_frame(body)[1] for body in bodies]
    assert [m.payload for m in decoded] == [m.payload for m in messages]


def test_control_frames_round_trip():
    frame = control_frame("_start", epoch=123.5, duration=20.0)
    (kind, body), = decode_frames(frame)
    assert kind == "ctl"
    assert body["ctl"] == "_start"
    assert body["epoch"] == 123.5


# ----------------------------------------------------------------------
# Rejection: malformed, truncated, hostile
# ----------------------------------------------------------------------
def test_unregistered_payload_type_rejected_at_encode():
    class NotRegistered:
        pass

    with pytest.raises(WireError, match="not wire-registered"):
        encode_payload(NotRegistered())


def test_unknown_tag_rejected_at_decode():
    with pytest.raises(WireError, match="unknown payload tag"):
        decode_payload({"_t": "no-such-payload", "x": 1})


def test_unknown_field_rejected_at_decode():
    encoded = encode_payload(
        ViewerState("client:0#1", 1, 2, 3, 4, 5, 6.0, 7)
    )
    encoded["smuggled"] = True
    with pytest.raises(WireError, match="no field 'smuggled'"):
        decode_payload(encoded)


def test_missing_required_field_rejected_at_decode():
    encoded = encode_payload(
        ViewerState("client:0#1", 1, 2, 3, 4, 5, 6.0, 7)
    )
    del encoded["viewer_id"]
    with pytest.raises(WireError, match="bad 'vstate' payload"):
        decode_payload(encoded)


def test_wrong_wire_version_rejected():
    frame = control_frame("_start", epoch=0.0)
    (body,) = FrameDecoder().feed(frame)
    body["v"] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="unsupported wire version"):
        parse_frame(body)


def test_oversized_length_prefix_rejected_before_buffering():
    hostile = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"
    with pytest.raises(WireError, match="exceeds maximum"):
        FrameDecoder().feed(hostile)


def test_truncated_stream_detected():
    frame = control_frame("_stop")
    decoder = FrameDecoder()
    decoder.feed(frame[:-3])
    assert decoder.pending_bytes() == len(frame) - 3
    with pytest.raises(WireError, match="truncated"):
        decoder.assert_drained()


def test_garbage_body_rejected():
    garbage = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
    with pytest.raises(WireError, match="undecodable frame body"):
        FrameDecoder().feed(garbage)


def test_frame_missing_envelope_field_rejected():
    frame = control_frame("x")
    (body,) = FrameDecoder().feed(frame)
    del body["ctl"]  # now neither a control nor a complete message frame
    with pytest.raises(WireError, match="missing envelope field"):
        parse_frame(body)


def test_duplicate_tag_registration_rejected():
    with pytest.raises(WireError, match="already registered"):
        register_payload("vstate", MirrorViewerState)


def test_non_dataclass_registration_rejected():
    with pytest.raises(WireError, match="not a dataclass"):
        register_payload("bogus", int)


# ----------------------------------------------------------------------
# Binary codec (wire v2)
# ----------------------------------------------------------------------
def _binary_frame_of(payload, **envelope):
    message = Message(
        src=envelope.pop("src", "cub:0"),
        dst=envelope.pop("dst", "cub:1"),
        payload=payload,
        size_bytes=envelope.pop("size_bytes", 64),
        **envelope,
    )
    return message, binary_message_frame(message)


@pytest.mark.parametrize("tag", sorted(REGISTRY))
def test_binary_payload_round_trips(tag):
    cls = REGISTRY[tag]
    for seed in range(20):
        rng = random.Random(f"bin-{tag}-{seed}")
        message, frame = _binary_frame_of(
            _instance_of(cls, rng),
            src=f"cub:{rng.randrange(16)}",
            dst="controller",
            size_bytes=rng.randrange(1, 10**6),
            kind=rng.choice(["control", "data"]),
            msg_id=rng.randrange(0, 2**63),
        )
        (kind, decoded), = decode_frames(frame)
        assert kind == "msg"
        assert decoded == message


def test_binary_round_trips_u64_fingerprints():
    # Content fingerprints are full-width 64-bit hashes; values at or
    # above 2**63 must survive (they overflow the signed i64 code).
    block = BlockData(
        viewer_id="client:0#1", instance=1, file_id=2, block_index=3,
        play_seqno=4, pattern=block_pattern(2, 3),
    )
    assert block.pattern >= (1 << 63)  # the fixture must exercise u64
    _, frame = _binary_frame_of(block, kind="data")
    (_, decoded), = decode_frames(frame)
    assert decoded.payload.pattern == block.pattern


def test_binary_rejects_int_beyond_u64():
    oversized = ViewerState("client:0#1", 1 << 64, 2, 3, 4, 5, 6.0, 7)
    with pytest.raises(WireError, match="out of binary range"):
        binary_message_frame(Message("cub:0", "cub:1", oversized, 64))


def test_mixed_codec_stream_decodes():
    # Frames are self-describing (first body byte), so one decoder
    # accepts an interleaved json/binary stream — what a connection
    # looks like around the codec_ack switchover.
    rng = random.Random(11)
    messages = [
        Message("cub:0", "cub:1", _instance_of(REGISTRY["vstate"], rng), 100)
        for _ in range(8)
    ]
    stream = b"".join(
        encode_message(m, CODEC_BINARY if i % 2 else CODEC_JSON)
        for i, m in enumerate(messages)
    )
    decoder = FrameDecoder()
    decoded = decoder.feed_parsed(stream)
    decoder.assert_drained()
    assert [m for _, m in decoded] == messages


def test_binary_bad_magic_rejected():
    _, frame = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    mangled = frame[:4] + b"\xb3" + frame[5:]
    with pytest.raises(WireError, match="undecodable frame body"):
        FrameDecoder().feed_parsed(mangled)


def test_binary_wrong_version_rejected():
    _, frame = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    mangled = frame[:5] + bytes([WIRE_VERSION_BINARY + 1]) + frame[6:]
    with pytest.raises(WireError, match="unsupported wire version"):
        FrameDecoder().feed_parsed(mangled)


def test_binary_unknown_frame_type_rejected():
    _, frame = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    mangled = frame[:6] + b"\x7f" + frame[7:]
    with pytest.raises(WireError, match="unknown binary frame type"):
        FrameDecoder().feed_parsed(mangled)


def test_binary_truncated_payload_rejected():
    _, frame = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    body = frame[4:-3]  # drop payload bytes but keep the prefix honest
    mangled = struct.pack(">I", len(body)) + body
    with pytest.raises(WireError, match="truncated binary"):
        FrameDecoder().feed_parsed(mangled)


def test_binary_unknown_payload_id_rejected():
    _, frame = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    body = bytearray(frame[4:])
    obj_at = body.index(0x07)  # first _B_OBJ type code is the payload's
    body[obj_at + 1] = 0xFE  # no registry id 254
    mangled = struct.pack(">I", len(body)) + bytes(body)
    with pytest.raises(WireError, match="unknown binary payload id"):
        FrameDecoder().feed_parsed(mangled)


def test_encode_message_rejects_unknown_codec():
    message, _ = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    with pytest.raises(WireError, match="unknown codec"):
        encode_message(message, "gzip")


def test_choose_codec_prefers_preferred_then_first_mutual():
    assert choose_codec(["json", "binary"], CODEC_BINARY) == CODEC_BINARY
    assert choose_codec(["json"], CODEC_BINARY) == CODEC_JSON
    assert choose_codec([], CODEC_BINARY) == CODEC_JSON
    # Preferred codec the peer lacks: fall back to the best mutual one
    # in SUPPORTED_CODECS preference order.
    assert choose_codec(["gzip", "binary"], CODEC_JSON) == CODEC_BINARY
    assert choose_codec(["gzip"], CODEC_BINARY) == CODEC_JSON


def test_wire_stats_counts_frames_and_bytes_per_codec():
    registry = MetricsRegistry()
    stats = WireStats(registry, node="test")
    message, _ = _binary_frame_of(ViewerState("c#1", 1, 2, 3, 4, 5, 6.0, 7))
    json_frame = encode_message(message, CODEC_JSON, stats)
    binary_frame = encode_message(message, CODEC_BINARY, stats)
    decoder = FrameDecoder(stats=stats)
    decoder.feed_parsed(json_frame + binary_frame)
    snapshot = registry.snapshot()
    for codec, direction, expected in (
        (CODEC_JSON, "tx", len(json_frame)),
        (CODEC_BINARY, "tx", len(binary_frame)),
        (CODEC_JSON, "rx", len(json_frame)),
        (CODEC_BINARY, "rx", len(binary_frame)),
    ):
        assert snapshot_total(
            snapshot, "live.wire_frames",
            codec=codec, direction=direction, node="test",
        ) == 1
        assert snapshot_total(
            snapshot, "live.wire_bytes",
            codec=codec, direction=direction, node="test",
        ) == expected
