"""Tests for the admission guard (§5's disabled product feature)."""

import pytest

from repro import TigerSystem, small_config


def test_disabled_by_default_admits_to_capacity():
    system = TigerSystem(small_config(), seed=31)
    system.add_standard_content(num_files=4, duration_s=120)
    client = system.add_client()
    for index in range(system.config.num_slots):
        client.start_stream(file_id=index % 4)
    system.run_for(30.0)
    assert system.oracle.num_occupied == system.config.num_slots


def test_limit_caps_admitted_load():
    config = small_config(admission_load_limit=0.6)
    system = TigerSystem(config, seed=31)
    system.add_standard_content(num_files=4, duration_s=120)
    client = system.add_client()
    for index in range(config.num_slots):
        client.start_stream(file_id=index % 4)
    system.run_for(40.0)
    load = system.oracle.load
    # The guard engages near the ceiling; local estimation is a little
    # noisy, so allow one step of slack above and real admission below.
    assert 0.4 < load < 0.8, f"load {load:.2f} not held near the 0.6 limit"
    queued = sum(cub.queued_start_requests() for cub in system.cubs)
    assert queued > 0, "excess viewers must wait, not vanish"


def test_load_estimate_tracks_true_load():
    system = TigerSystem(small_config(), seed=32)
    system.add_standard_content(num_files=4, duration_s=120)
    client = system.add_client()
    for index in range(16):  # half of 32 slots
        client.start_stream(file_id=index % 4)
    system.run_for(25.0)
    true_load = system.oracle.load
    estimates = [cub.local_load_estimate() for cub in system.cubs]
    mean_estimate = sum(estimates) / len(estimates)
    assert mean_estimate == pytest.approx(true_load, abs=0.12)


def test_estimate_zero_before_history():
    system = TigerSystem(small_config(), seed=33)
    system.add_standard_content(num_files=2, duration_s=60)
    assert system.cubs[0].local_load_estimate() == 0.0
