"""Multiprocessing layer: seed derivation, group pool, null-message ring.

The ring tests spawn real OS processes connected by pipes, so they run
a touch slower than the in-process shard tests — parameters are kept
small (3 shards, 1 virtual second) to keep the suite quick.
"""

import pytest

from repro.sim.parallel import (
    derive_seed,
    run_group_pool,
    run_null_message_ring,
)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_separated_across_indices_and_seeds(self):
        seeds = {derive_seed(seed, index)
                 for seed in range(4) for index in range(8)}
        assert len(seeds) == 32  # no collisions in a small grid

    def test_fits_in_63_bits(self):
        for index in range(16):
            value = derive_seed(123, index)
            assert 0 <= value < 2**63


# ----------------------------------------------------------------------
# Group pool
# ----------------------------------------------------------------------
def _square(spec):
    return spec * spec


class TestRunGroupPool:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_group_pool(_square, [1, 2], 0)

    def test_serial_path_preserves_order(self):
        results, wall = run_group_pool(_square, [3, 1, 2], 1)
        assert results == [9, 1, 4]
        assert wall >= 0.0

    def test_single_spec_stays_in_process(self):
        # len(specs) <= 1 short-circuits to serial even with shards > 1,
        # so a lambda (unpicklable) is fine here.
        results, _ = run_group_pool(lambda spec: spec + 1, [41], 4)
        assert results == [42]

    def test_spawn_pool_matches_serial(self):
        serial, _ = run_group_pool(_square, [5, 6, 7, 8], 1)
        pooled, _ = run_group_pool(_square, [5, 6, 7, 8], 2)
        assert pooled == serial


# ----------------------------------------------------------------------
# Null-message ring
# ----------------------------------------------------------------------
def _sim_visible(stats):
    """The deterministic projection of a worker's stats (the docstring
    contract: everything except transport-level ``nulls_sent``)."""
    return {
        key: value
        for key, value in stats.items()
        if key != "nulls_sent"
    }


class TestNullMessageRing:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2 shards"):
            run_null_message_ring(num_shards=1)
        with pytest.raises(ValueError, match="must be positive"):
            run_null_message_ring(num_shards=2, lookahead=0.0)

    def test_token_circulates_and_horizon_is_reached(self):
        stats = run_null_message_ring(
            num_shards=3, lookahead=0.05, until=1.0, tick=0.05,
            token_hops=6,
        )
        assert [row["index"] for row in stats] == [0, 1, 2]
        # Token injected with 6 remaining hops: 7 dispatches in all,
        # and every forward crossed a process boundary.
        assert sum(row["tokens"] for row in stats) == 7
        assert sum(row["events_sent"] for row in stats) == 6
        assert sum(row["received"] for row in stats) == 6
        # Blocked waits promise progress: somebody sent null messages.
        assert sum(row["nulls_sent"] for row in stats) > 0
        # Every shard drained its tick train to the horizon.
        for row in stats:
            assert row["final_now"] == pytest.approx(1.0)
            assert row["events"] >= int(1.0 / 0.05)

    def test_simulation_visible_fields_are_deterministic(self):
        kwargs = dict(
            num_shards=3, lookahead=0.05, until=1.0, tick=0.05,
            token_hops=6,
        )
        first = run_null_message_ring(**kwargs)
        second = run_null_message_ring(**kwargs)
        assert [_sim_visible(row) for row in first] == [
            _sim_visible(row) for row in second
        ]
