"""Tests for the Zipf popularity workload and skew measurement."""

import pytest

from repro import TigerSystem, small_config
from repro.workloads.popularity import (
    SkewReport,
    ZipfSelector,
    ZipfWorkload,
    measure_skew,
)


class TestZipfSelector:
    def test_probabilities_sum_to_one(self, rngs):
        selector = ZipfSelector(10, 1.0, rngs.stream("z"))
        total = sum(selector.probability(rank) for rank in range(10))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_popular(self, rngs):
        selector = ZipfSelector(10, 1.2, rngs.stream("z"))
        probs = [selector.probability(rank) for rank in range(10)]
        assert probs == sorted(probs, reverse=True)

    def test_exponent_zero_is_uniform(self, rngs):
        selector = ZipfSelector(5, 0.0, rngs.stream("z"))
        for rank in range(5):
            assert selector.probability(rank) == pytest.approx(0.2)

    def test_draws_match_distribution(self, rngs):
        selector = ZipfSelector(4, 1.0, rngs.stream("z"))
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            counts[selector.draw()] += 1
        assert counts[0] > counts[1] > counts[3]
        expected0 = selector.probability(0)
        assert counts[0] / 4000 == pytest.approx(expected0, abs=0.04)

    def test_catalog_of_one_always_draws_zero(self, rngs):
        selector = ZipfSelector(1, 1.3, rngs.stream("z"))
        assert selector.probability(0) == pytest.approx(1.0)
        assert all(selector.draw() == 0 for _ in range(100))

    def test_exponent_zero_draws_uniformly(self, rngs):
        selector = ZipfSelector(5, 0.0, rngs.stream("z"))
        counts = [0] * 5
        for _ in range(5000):
            counts[selector.draw()] += 1
        for count in counts:
            assert count / 5000 == pytest.approx(0.2, abs=0.03)

    def test_same_seed_same_draw_sequence(self):
        import random

        first = ZipfSelector(8, 1.1, random.Random(99))
        second = ZipfSelector(8, 1.1, random.Random(99))
        assert [first.draw() for _ in range(200)] == [
            second.draw() for _ in range(200)
        ]

    def test_invalid_parameters(self, rngs):
        with pytest.raises(ValueError):
            ZipfSelector(0, 1.0, rngs.stream("z"))
        with pytest.raises(ValueError):
            ZipfSelector(5, -1.0, rngs.stream("z"))
        selector = ZipfSelector(5, 1.0, rngs.stream("z"))
        with pytest.raises(ValueError):
            selector.probability(5)


class TestSkewedDemandBalance:
    def test_striping_absorbs_zipf_skew(self):
        """§2.2: skewed demand, flat component load."""
        system = TigerSystem(small_config(), seed=61)
        system.add_standard_content(num_files=8, duration_s=240)
        workload = ZipfWorkload(system, exponent=1.4)
        workload.add_streams(24)
        system.run_for(10.0)
        for cub in system.cubs:
            cub.reset_measurement()
        system.run_for(15.0)
        report = measure_skew(system, workload)
        # Demand is visibly skewed...
        assert report.demand_skew > 1.8
        # ...but no drive is a hotspot.
        assert report.service_skew < 1.35

    def test_report_handles_uniform(self):
        report = SkewReport({0: 5, 1: 5}, [0.5, 0.5])
        assert report.demand_skew == pytest.approx(1.0)
        assert report.service_skew == pytest.approx(1.0)

    def test_zipf_workload_restarts_with_zipf(self):
        system = TigerSystem(small_config(), seed=62)
        system.add_standard_content(num_files=6, duration_s=20)
        workload = ZipfWorkload(system, exponent=1.0)
        workload.add_streams(6)
        system.run_for(60.0)  # several EOF generations
        report = measure_skew(system, workload)
        assert sum(report.plays_per_file.values()) > 6
