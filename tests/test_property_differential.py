"""Differential and property-based tests on core data structures."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.netschedule import NetworkSchedule
from repro.core.slots import SlotClock
from repro.core.view import ScheduleView
from repro.core.viewerstate import ViewerState

LENGTH = 8.0
CAPACITY = 10e6
WIDTH = 1.0


class TestNetworkScheduleDifferential:
    """The prefix-sum index must agree with the brute-force definition."""

    @staticmethod
    def brute_force_load(schedule: NetworkSchedule, x: float) -> float:
        return sum(
            entry.bitrate_bps
            for entry in schedule.entries()
            if schedule._covers(entry, x)
        )

    # Offsets/probes on a millisecond grid: the two implementations
    # use slightly different epsilon conventions at sub-nanosecond
    # adjacency (and Python's float modulo misbehaves on subnormals),
    # neither of which a schedule with millisecond-scale slots can hit.
    _grid = st.integers(0, int(LENGTH * 1000) - 1).map(lambda i: i / 1000.0)

    @given(
        st.lists(
            st.tuples(_grid, st.sampled_from([1e6, 2e6, 3e6])),
            max_size=25,
        ),
        _grid,
    )
    @settings(max_examples=80, deadline=None)
    def test_load_at_matches_brute_force(self, entries, probe):
        schedule = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        for offset, rate in entries:
            if schedule.can_insert(offset, rate):
                schedule.insert("v", offset, rate)
        indexed = schedule.load_at(probe)
        brute = self.brute_force_load(schedule, probe)
        assert indexed == pytest.approx(brute, abs=1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, LENGTH - 1e-6),
                st.sampled_from([1e6, 2e6, 4e6]),
            ),
            max_size=20,
        ),
        st.floats(0.0, LENGTH - 1e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_peak_load_bounds_point_loads(self, entries, window_start):
        schedule = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        for offset, rate in entries:
            if schedule.can_insert(offset, rate):
                schedule.insert("v", offset, rate)
        peak = schedule.peak_load_in(window_start, WIDTH)
        for step in range(10):
            x = (window_start + step * WIDTH / 10) % LENGTH
            assert schedule.load_at(x) <= peak + 1.0

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, LENGTH - 1e-6),
                st.sampled_from([1e6, 2e6]),
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_remove_restores_headroom(self, entries):
        schedule = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        inserted = []
        for offset, rate in entries:
            if schedule.can_insert(offset, rate):
                inserted.append(schedule.insert("v", offset, rate))
        for entry in inserted:
            schedule.remove(entry.entry_id)
        for step in range(8):
            assert schedule.load_at(step * LENGTH / 8) == 0.0


class TestSlotClockProperties:
    @given(
        st.integers(2, 40),
        st.integers(1, 4),
        st.integers(2, 12),
        st.floats(0.25, 2.0),
        st.floats(0.0, 200.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_serving_disk_is_consistent_with_pointer(
        self, cubs, disks_per, slots_per_disk, bpt, when
    ):
        num_disks = cubs * disks_per
        clock = SlotClock(num_disks, num_disks * slots_per_disk, bpt)
        for slot in (0, clock.num_slots // 2, clock.num_slots - 1):
            disk = clock.serving_disk(slot, when)
            # That disk's last visit to the slot is within one full
            # block play time of `when`.
            visit = clock.visit_time(disk, slot, after=when - bpt - 1e-6)
            assert visit <= when + 1e-6 or math.isclose(
                visit, when, abs_tol=1e-6
            )

    @given(st.integers(0, 55), st.floats(0.0, 300.0))
    @settings(max_examples=60, deadline=None)
    def test_next_slot_visit_monotone(self, disk, after):
        clock = SlotClock(56, 602, 1.0)
        slot1, t1 = clock.next_slot_visit(disk, after)
        slot2, t2 = clock.next_slot_visit(disk, t1)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(clock.block_service_time, abs=1e-6)


class TestViewProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 3)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_admitting_any_order_keeps_max_due(self, events):
        """Whatever order states arrive in, the slot records the one
        with the latest due time (redundant copies can arrive first)."""
        view = ScheduleView(0, 1.0, hold_time=100.0, is_final=lambda s: False)
        best = {}
        for seqno, slot in events:
            state = ViewerState(
                viewer_id="v",
                instance=slot + 1,  # one play per slot
                slot=slot,
                file_id=0,
                block_index=seqno,
                disk_id=0,
                due_time=float(seqno),
                play_seqno=seqno,
            )
            view.admit(state, now=0.0)
            key = (slot, state.instance)
            best[slot] = max(best.get(slot, -1.0), float(seqno))
        for slot, expected_due in best.items():
            recorded = view.state_for_slot(slot)
            assert recorded is not None
            assert recorded.due_time == pytest.approx(expected_due)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_duplicates_never_double_admit(self, seqnos):
        view = ScheduleView(0, 1.0, hold_time=1000.0, is_final=lambda s: False)
        admitted = 0
        for seqno in seqnos:
            state = ViewerState("v", 1, 0, 0, seqno, 0, float(seqno), seqno)
            if view.admit(state, now=0.0) == "new":
                admitted += 1
        assert admitted == len(set(seqnos))
