"""Differential suite: the sharded kernel vs the single heap, bit for bit.

The partitioned kernel's correctness oracle (ISSUE: "for any seed,
sharded and single-heap runs must produce bit-identical protocol
counters"): the k-way merge dispatches in exact ``(time, priority,
seq)`` order, so shard count is an execution detail the protocol can
never observe.  These tests pin that across seeds, shard counts, and
chaos fault plans — the same seven counters the bench baseline gate
diffs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import PROTOCOL_COUNTERS, protocol_counters
from repro.config import small_config
from repro.core import TigerSystem
from repro.faults import ChaosHarness, standard_chaos_plan
from repro.workloads import ContinuousWorkload


def _loaded_counters(seed: int, shards: int, seconds: float = 20.0):
    """Seven counters from a loaded (no-fault) run on ``shards`` lanes."""
    system = TigerSystem(small_config(), seed=seed, shards=shards)
    system.add_standard_content(num_files=4, duration_s=60.0)
    workload = ContinuousWorkload(system)
    workload.add_streams(max(1, system.config.num_slots // 2))
    system.run_for(seconds)
    system.finalize_clients()
    system.export_metrics()
    return protocol_counters(system.registry)


def _chaos_counters(
    seed: int, shards: int, duration: float = 20.0, drop_rate: float = 0.01
):
    """Seven counters from a standard chaos mix on ``shards`` lanes."""
    plan = standard_chaos_plan(duration=duration, drop_rate=drop_rate)
    harness = ChaosHarness(
        small_config(),
        plan,
        seed=seed,
        load=0.5,
        duration=duration,
        shards=shards,
    )
    harness.run()
    return protocol_counters(harness.system.registry)


@pytest.mark.parametrize("shards", [2, 4])
def test_loaded_run_counters_match_single_heap(shards):
    single = _loaded_counters(seed=0, shards=1)
    assert single["cub.inserts_performed"] > 0  # the run did real work
    assert single["cub.viewer_states_forwarded"] > 0
    assert _loaded_counters(seed=0, shards=shards) == single


@pytest.mark.parametrize("shards", [2, 4])
def test_chaos_run_counters_match_single_heap(shards):
    single = _chaos_counters(seed=0, shards=1)
    assert single["cub.inserts_performed"] > 0
    assert _chaos_counters(seed=0, shards=shards) == single


@given(
    seed=st.integers(0, 2**16),
    shards=st.sampled_from([2, 4]),
    drop_rate=st.sampled_from([0.0, 0.01, 0.03]),
)
@settings(max_examples=5, deadline=None)
def test_sharded_chaos_is_bit_identical_for_any_seed(
    seed, shards, drop_rate
):
    """Property: seed x shard-count x fault-mix — the seven counters
    never depend on how the event heap is partitioned."""
    single = _chaos_counters(seed=seed, shards=1, drop_rate=drop_rate)
    sharded = _chaos_counters(seed=seed, shards=shards, drop_rate=drop_rate)
    assert sharded == single
    assert set(single) == set(PROTOCOL_COUNTERS)
