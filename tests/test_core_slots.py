"""Tests for slot-schedule arithmetic (paper §3.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import paper_config, small_config
from repro.core.slots import SlotClock


@pytest.fixture
def clock():
    """The paper's system: 56 disks, 602 slots, 1 s block play time."""
    return SlotClock(num_disks=56, num_slots=602, block_play_time=1.0)


class TestGeometry:
    def test_schedule_duration_is_bpt_times_disks(self, clock):
        """"the entire schedule is the block play time times the number
        of disks in the system." """
        assert clock.duration == pytest.approx(56.0)

    def test_block_service_time_from_rounding(self, clock):
        """602 slots in 56 s: the lengthened service time of §3.1."""
        assert clock.block_service_time == pytest.approx(56.0 / 602)

    def test_integral_slot_count(self, clock):
        assert clock.num_slots * clock.block_service_time == pytest.approx(
            clock.duration
        )

    def test_paper_config_capacity(self):
        config = paper_config()
        assert config.num_slots == 602
        assert config.schedule_duration == pytest.approx(56.0)

    def test_capacity_rounds_down(self):
        """"the actual hardware capacity of the system as a whole is
        rounded down to the nearest stream." """
        config = small_config(streams_per_disk_override=3.9)
        assert config.num_slots == int(math.floor(8 * 3.9))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SlotClock(0, 10, 1.0)
        with pytest.raises(ValueError):
            SlotClock(10, 0, 1.0)
        with pytest.raises(ValueError):
            SlotClock(10, 10, 0.0)


class TestPointerMotion:
    def test_disk0_pointer_equals_time_mod_duration(self, clock):
        assert clock.pointer_offset(0, 10.0) == pytest.approx(10.0)
        assert clock.pointer_offset(0, 60.0) == pytest.approx(4.0)

    def test_successor_trails_by_one_block_play_time(self, clock):
        """"The pointer for each disk is one block play time behind the
        pointer for its predecessor." """
        t = 25.3
        lead = clock.pointer_offset(3, t)
        trail = clock.pointer_offset(4, t)
        assert (lead - trail) % clock.duration == pytest.approx(1.0)

    def test_last_to_first_distance_also_one_bpt(self, clock):
        """The wraparound property the schedule length guarantees."""
        t = 100.0
        last = clock.pointer_offset(55, t)
        first = clock.pointer_offset(0, t)
        assert (last - first) % clock.duration == pytest.approx(
            clock.duration - 55.0
        )
        # i.e. disk 0 is one bpt *ahead* of disk 55's position + 56.
        assert (first - last) % clock.duration == pytest.approx(55.0)

    def test_slot_under_pointer(self, clock):
        bst = clock.block_service_time
        assert clock.slot_under_pointer(0, 0.0) == 0
        assert clock.slot_under_pointer(0, bst * 5 + bst / 2) == 5

    def test_out_of_range_disk_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.pointer_offset(56, 0.0)


class TestVisits:
    def test_visit_time_basic(self, clock):
        bst = clock.block_service_time
        assert clock.visit_time(0, 5, after=0.0) == pytest.approx(5 * bst)

    def test_visit_time_respects_after(self, clock):
        first = clock.visit_time(0, 5, after=0.0)
        later = clock.visit_time(0, 5, after=first + 0.001)
        assert later == pytest.approx(first + clock.duration)

    def test_consecutive_disks_visit_one_bpt_apart(self, clock):
        """The lockstep property: a viewer's consecutive blocks come
        from consecutive disks exactly one block play time apart."""
        slot = 17
        t0 = clock.visit_time(10, slot, after=0.0)
        t1 = clock.visit_time(11, slot, after=t0)
        assert t1 - t0 == pytest.approx(1.0)

    def test_slot_visited_every_block_play_time(self, clock):
        """Pointers are one bpt apart, so some disk starts a slot's
        service every block play time."""
        slot = 100
        visits = sorted(
            clock.visit_time(disk, slot, after=0.0) for disk in range(56)
        )
        gaps = [b - a for a, b in zip(visits, visits[1:])]
        assert all(gap == pytest.approx(1.0) for gap in gaps)

    def test_next_slot_visit_strictly_future(self, clock):
        slot, when = clock.next_slot_visit(7, after=12.34)
        assert when > 12.34
        assert 0 <= slot < clock.num_slots

    def test_next_slot_visit_matches_visit_time(self, clock):
        slot, when = clock.next_slot_visit(3, after=5.0)
        assert clock.visit_time(3, slot, after=5.0) == pytest.approx(when)

    def test_serving_disk_inverts_visit_time(self, clock):
        for disk in (0, 13, 55):
            for slot in (0, 301, 601):
                visit = clock.visit_time(disk, slot, after=123.0)
                assert clock.serving_disk(slot, visit + 1e-6) == disk

    def test_visits_per_block_play_time(self, clock):
        """One disk crosses streams-per-disk slots per block play time."""
        assert clock.visits_per_block_play_time() == pytest.approx(602 / 56)

    @given(
        st.integers(0, 55),
        st.integers(0, 601),
        st.floats(0.0, 500.0),
    )
    def test_visit_time_at_or_after(self, disk, slot, after):
        clock = SlotClock(56, 602, 1.0)
        visit = clock.visit_time(disk, slot, after)
        assert visit >= after - 1e-6
        # And it really is that disk's visit to that slot:
        offset = clock.pointer_offset(disk, visit)
        assert offset == pytest.approx(slot * clock.block_service_time, abs=1e-6)

    @given(st.integers(2, 30), st.integers(1, 4), st.floats(0.1, 3.0))
    def test_geometry_consistency_random_systems(self, cubs, disks_per, bpt):
        num_disks = cubs * disks_per
        num_slots = num_disks * 5
        clock = SlotClock(num_disks, num_slots, bpt)
        assert clock.num_slots * clock.block_service_time == pytest.approx(
            clock.duration
        )
