"""Message-id allocation: resettable, namespaced, collision-free."""

import pytest

from repro.net.message import (
    MESSAGE_ID_SEQUENCE_BITS,
    Message,
    MessageIdAllocator,
    next_message_id,
    reset_message_ids,
)


@pytest.fixture(autouse=True)
def _restore_global_sequence():
    yield
    reset_message_ids()


def test_reset_restarts_the_sequence():
    reset_message_ids()
    first = [next_message_id() for _ in range(5)]
    reset_message_ids()
    second = [next_message_id() for _ in range(5)]
    assert first == second == list(range(5))


def test_namespaces_mint_disjoint_id_ranges():
    base = 1 << MESSAGE_ID_SEQUENCE_BITS
    reset_message_ids(namespace=3)
    ids_ns3 = [next_message_id() for _ in range(4)]
    reset_message_ids(namespace=7)
    ids_ns7 = [next_message_id() for _ in range(4)]
    assert ids_ns3 == [3 * base + i for i in range(4)]
    assert ids_ns7 == [7 * base + i for i in range(4)]
    assert not set(ids_ns3) & set(ids_ns7)


def test_messages_pick_up_the_active_namespace():
    reset_message_ids(namespace=2)
    message = Message("cub:0", "cub:1", None, 100)
    assert message.msg_id >> MESSAGE_ID_SEQUENCE_BITS == 2


def test_independent_allocators_do_not_share_state():
    alpha = MessageIdAllocator(namespace=1)
    beta = MessageIdAllocator(namespace=1)
    assert alpha.allocate() == beta.allocate()
    alpha.allocate()
    assert beta.allocate() == alpha.allocate() - 1


def test_negative_namespace_rejected():
    with pytest.raises(ValueError):
        MessageIdAllocator(namespace=-1)


def test_back_to_back_systems_allocate_identical_ids():
    from repro.config import small_config
    from repro.core.tiger import TigerSystem

    def id_fingerprint():
        system = TigerSystem(small_config())
        system.add_standard_content(num_files=2, duration_s=30.0)
        client = system.add_client()
        system.sim.call_at(1.0, client.start_stream, 1)
        system.run_until(3.0)
        # The next id to be minted counts every message the run sent.
        return next_message_id()

    # The constructor resets the sequence, so back-to-back systems in
    # one process mint identical ids for identical traffic instead of
    # continuing a process-global counter.
    assert id_fingerprint() == id_fingerprint()
