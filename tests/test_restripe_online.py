"""Online restriper tests: completion, crash-resume, faults, monitor.

The satellite acceptance pair lives here:

* **estimate lower-bounds the online run** — a restripe that shares
  disks and NICs with live viewers can never beat the analytic
  dedicated-resource estimate from ``storage/restripe.py``.
* **crash-resume converges** — a restripe killed mid-run and resumed
  from its journal commits exactly the complement of the first run's
  moves (zero duplicated moves) and lands on a bit-identical placement
  fingerprint.
"""

from __future__ import annotations

import pytest

from repro.config import TigerConfig, small_config
from repro.core.tiger import TigerSystem
from repro.disk.zones import ZONE_OUTER
from repro.faults.monitor import InvariantMonitor, InvariantViolation
from repro.storage.journal import MoveJournal
from repro.storage.rebalance import (
    MOVE_COMMITTED,
    MOVE_SKIPPED,
    placement_fingerprint,
    plan_rebalance,
)
from repro.storage.restripe import estimate_restripe_time
from repro.workloads.generator import ContinuousWorkload

#: Never loop a sim forever when a restripe regresses into not finishing.
SIM_CAP_S = 400.0


def mixed_generation_weights(config: TigerConfig):
    """Every cub's last local disk doubles its capacity weight."""
    return tuple(
        2 if disk // config.num_cubs == config.disks_per_cub - 1 else 1
        for disk in range(config.num_disks)
    )


def build_restripe_system(
    config=None, seed=7, journal=None, load=0.0, **attach_kwargs
):
    """System + attached (unstarted) restriper for the weighted plan."""
    system = TigerSystem(config or small_config(), seed=seed)
    files = system.add_standard_content(num_files=6, duration_s=120)
    weighted = system.layout.with_weights(
        mixed_generation_weights(system.config)
    )
    block_bytes = {
        entry.file_id: entry.content_bytes_per_block for entry in files
    }
    plan = plan_rebalance(system.layout, weighted, files, block_bytes)
    restriper = system.attach_restriper(
        plan, journal=journal, **attach_kwargs
    )
    if load > 0:
        workload = ContinuousWorkload(system)
        workload.add_streams(
            max(1, round(load * system.config.num_slots))
        )
    return system, restriper


def drive_to_completion(system, restriper):
    while not restriper.finished and system.sim.now < SIM_CAP_S:
        system.run_for(5.0)


def dedicated_estimate(system, plan):
    """Analytic lower bound: full disks and NICs, no viewers."""
    config = system.config
    block_bytes = config.block_bytes
    disk_rate = block_bytes / config.disk.expected_read_time(
        ZONE_OUTER, block_bytes
    )
    return estimate_restripe_time(
        plan, disk_rate, disk_rate, config.cub_nic_bps
    )


class TestCompletion:
    def test_all_moves_commit(self):
        system, restriper = build_restripe_system(throttle=0.5)
        system.sim.call_at(1.0, restriper.start)
        drive_to_completion(system, restriper)
        assert restriper.finished
        assert restriper.progress_ratio() == 1.0
        assert all(
            state == MOVE_COMMITTED for state in restriper.move_state
        )
        assert int(restriper.moves_committed.value()) == len(
            restriper.plan.moves
        )
        assert restriper.journal.done_fingerprint == (
            restriper.result_fingerprint()
        )
        system.assert_invariants()

    def test_fingerprint_matches_full_commit_set(self):
        system, restriper = build_restripe_system(throttle=0.5)
        system.sim.call_at(1.0, restriper.start)
        drive_to_completion(system, restriper)
        expected = placement_fingerprint(
            restriper.plan, set(range(len(restriper.plan.moves)))
        )
        assert restriper.result_fingerprint() == expected

    def test_viewers_unharmed_under_load(self):
        system, restriper = build_restripe_system(throttle=0.25, load=0.5)
        system.sim.call_at(2.0, restriper.start)
        drive_to_completion(system, restriper)
        system.finalize_clients()
        assert restriper.finished
        assert system.total_client_missed() == 0
        system.assert_invariants()


class TestEstimateLowerBound:
    """Property: online completion time >= the analytic estimate."""

    @pytest.mark.parametrize("num_cubs", [4, 8])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_online_never_beats_dedicated_estimate(self, num_cubs, seed):
        config = TigerConfig(
            num_cubs=num_cubs,
            disks_per_cub=2,
            block_play_time=1.0,
            max_bitrate_bps=2e6,
            decluster=2,
            streams_per_disk_override=4.0,
        )
        system, restriper = build_restripe_system(
            config=config, seed=seed, throttle=0.5, load=0.5
        )
        system.sim.call_at(1.0, restriper.start)
        drive_to_completion(system, restriper)
        assert restriper.finished
        elapsed = restriper.finished_at - restriper.started_at
        assert elapsed >= dedicated_estimate(system, restriper.plan)


class TestCrashResume:
    def test_resume_converges_bit_identically(self, tmp_path):
        path = str(tmp_path / "restripe.jsonl")

        # Undisturbed reference run (in-memory journal).
        reference_system, reference = build_restripe_system(throttle=0.5)
        reference_system.sim.call_at(1.0, reference.start)
        drive_to_completion(reference_system, reference)
        assert reference.finished

        # Run 1: journaled, killed (discarded) mid-restripe.
        system, restriper = build_restripe_system(
            journal=MoveJournal.load(path), throttle=0.5
        )
        system.sim.call_at(1.0, restriper.start)
        system.run_for(6.0)
        first_committed = set(restriper.journal.committed)
        assert not restriper.finished
        assert 0 < len(first_committed) < len(restriper.plan.moves)

        # Run 2: fresh process, journal reloaded from disk.
        resumed_system, resumed = build_restripe_system(
            journal=MoveJournal.load(path), throttle=0.5
        )
        skipped = [
            move_id
            for move_id, state in enumerate(resumed.move_state)
            if state == MOVE_SKIPPED
        ]
        assert set(skipped) == first_committed
        resumed_system.sim.call_at(1.0, resumed.start)
        drive_to_completion(resumed_system, resumed)
        assert resumed.finished

        # Zero duplicated moves: the resumed run commits exactly the
        # complement (the journal raises on any double commit anyway).
        second_committed = {
            move_id
            for move_id, state in enumerate(resumed.move_state)
            if state == MOVE_COMMITTED
        }
        assert not (first_committed & second_committed)
        assert first_committed | second_committed == set(
            range(len(resumed.plan.moves))
        )
        assert int(resumed.moves_skipped.value()) == len(first_committed)

        # Bit-identical final placement.
        assert resumed.result_fingerprint() == (
            reference.result_fingerprint()
        )
        assert MoveJournal.load(path).done_fingerprint == (
            reference.result_fingerprint()
        )


class TestOperatorControls:
    def test_pause_stops_commits_resume_continues(self):
        system, restriper = build_restripe_system(throttle=0.5)
        system.sim.call_at(1.0, restriper.start)
        system.run_for(5.0)
        restriper.pause()
        in_flight_drain = restriper.in_flight()
        at_pause = int(restriper.moves_committed.value())
        system.run_for(10.0)
        # Only already-launched copies may land during the pause.
        paused_delta = int(restriper.moves_committed.value()) - at_pause
        assert paused_delta <= in_flight_drain
        restriper.resume()
        drive_to_completion(system, restriper)
        assert restriper.finished

    def test_abort_is_permanent_and_journaled(self):
        system, restriper = build_restripe_system(throttle=0.5)
        system.sim.call_at(1.0, restriper.start)
        system.run_for(5.0)
        restriper.abort("operator abort")
        at_abort = int(restriper.moves_committed.value())
        restriper.resume()  # must be a no-op after abort
        system.run_for(10.0)
        assert restriper.aborted
        assert not restriper.finished
        assert int(restriper.moves_committed.value()) == at_abort
        assert restriper.journal.aborted
        # Dual presence: unmoved blocks still serve from their source.
        system.assert_invariants()


class TestRetrySuspend:
    def test_dead_cub_suspends_then_recovery_resumes(self):
        system, restriper = build_restripe_system(
            throttle=0.5, ack_timeout=1.0, retry_base=0.25,
            suspend_after=3,
        )
        system.sim.call_at(1.0, restriper.start)
        system.sim.call_at(2.0, system.fail_cub, 1)
        system.run_for(12.0)
        assert restriper.suspended
        assert int(restriper.retries.value()) >= 3
        assert int(restriper.suspensions.value()) == 1
        # Repairing the cub is the event the suspension waits for.
        system.recover_cub(1)
        assert not restriper.suspended
        drive_to_completion(system, restriper)
        assert restriper.finished
        assert int(restriper.moves_committed.value()) == len(
            restriper.plan.moves
        )


class TestChaosRestripeDrill:
    def test_cub_kill_mid_restripe_survives(self):
        from repro.faults.harness import ChaosHarness
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(name="restripe-kill")
        plan.crash_cub(1, at=10.0, restart_after=8.0)
        config = small_config()
        harness = ChaosHarness(
            config, plan, seed=3, load=0.5, duration=60.0,
            restripe_weights=mixed_generation_weights(config),
            restripe_throttle=0.5, restripe_start=5.0,
        )
        report = harness.run()  # raises on any invariant violation
        restriper = harness.system.restriper
        assert restriper.finished
        assert report.totals["restripe_committed"] == len(
            restriper.plan.moves
        )
        # Copies in flight at the kill instant must have timed out and
        # been re-issued once the cub came back.
        assert report.totals["restripe_retries"] >= 1

    def test_pause_window_and_abort_faults(self):
        from repro.faults.harness import ChaosHarness
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(name="restripe-ops")
        plan.pause_restripe(8.0, duration=5.0)
        plan.abort_restripe(20.0, reason="drill")
        config = small_config()
        harness = ChaosHarness(
            config, plan, seed=3, load=0.5, duration=40.0,
            restripe_weights=mixed_generation_weights(config),
            restripe_throttle=0.5, restripe_start=5.0,
        )
        report = harness.run()
        restriper = harness.system.restriper
        assert restriper.aborted
        assert not restriper.finished
        assert restriper.journal.aborted
        committed = report.totals["restripe_committed"]
        assert 0 < committed < len(restriper.plan.moves)


class TestRestripePresenceInvariant:
    def test_monitor_clean_during_restripe(self):
        system, restriper = build_restripe_system(throttle=0.5, load=0.25)
        monitor = InvariantMonitor(system, period=1.0)
        system.sim.call_at(1.0, restriper.start)
        monitor.install()
        # check_now raises InvariantViolation on any dual-presence break.
        drive_to_completion(system, restriper)
        monitor.final_check()
        assert restriper.finished
        assert monitor.checks_run > 0

    def test_foreign_disk_migration_flagged(self):
        import dataclasses

        system, restriper = build_restripe_system(throttle=0.5)
        monitor = InvariantMonitor(system, period=1.0)
        cub = system.cubs[0]
        foreign_disk = next(
            disk
            for disk in range(system.config.num_disks)
            if disk not in cub.disks
        )
        location = next(
            cub.block_index.lookup_primary(file_id, block)
            for file_id in range(6)
            for block in range(8)
            if cub.block_index.lookup_primary(file_id, block) is not None
        )
        cub.migrations[(0, 0)] = dataclasses.replace(
            location, disk_id=foreign_disk
        )
        with pytest.raises(InvariantViolation, match="restripe-presence"):
            monitor.check_now()
