"""Integration tests for fault tolerance (§2.3, §4.1.1)."""


from repro import TigerSystem, small_config


def build_loaded(seed=9, streams=12, duration=240.0):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=6, duration_s=duration)
    client = system.add_client()
    for index in range(streams):
        client.start_stream(file_id=index % 6)
    system.run_for(15.0)
    return system, client


class TestCubFailure:
    def test_streams_continue_via_mirrors(self):
        system, client = build_loaded()
        system.fail_cub(1)
        system.run_for(40.0)
        system.finalize_clients()
        # Mirror pieces flow and streams keep advancing.
        assert system.total_mirror_pieces_sent() > 0
        for monitor in client.all_monitors():
            assert monitor.blocks_received > 30

    def test_losses_confined_to_detection_window(self):
        """After the deadman fires, mirror coverage stops the bleeding;
        the §5 reconfiguration measurement found an ~8 s loss window."""
        system, client = build_loaded()
        failure_time = system.sim.now
        system.fail_cub(1)
        system.run_for(60.0)
        system.finalize_clients()
        loss_times = sorted(
            when
            for monitor in client.all_monitors()
            for when in monitor.loss_times
        )
        assert loss_times, "a real failure loses some blocks"
        window = loss_times[-1] - loss_times[0]
        timeout = system.config.deadman_timeout
        assert window < timeout + 4.0
        assert loss_times[-1] < failure_time + timeout + 6.0

    def test_no_losses_after_coverage_established(self):
        system, client = build_loaded()
        system.fail_cub(1)
        system.run_for(20.0)  # detection + settling
        counted = {
            monitor.instance: monitor.blocks_missed
            for monitor in client.all_monitors()
        }
        system.run_for(30.0)
        system.finalize_clients()
        for monitor in client.all_monitors():
            assert monitor.blocks_missed == counted.get(monitor.instance, 0)

    def test_mirror_pieces_spread_over_covering_cubs(self):
        system, client = build_loaded()
        system.fail_cub(1)
        system.run_for(40.0)
        senders = [
            cub.cub_id
            for cub in system.cubs
            if cub.mirror_pieces_sent.count > 0
        ]
        expected = set(system.mirror.covering_cubs(1))
        assert set(senders) <= expected | {1}
        assert len(senders) >= 2

    def test_control_traffic_roughly_doubles_at_bridge(self):
        """§5: 'the control traffic in failed mode is roughly double
        that in non-failed mode' for a mirroring cub."""
        system, client = build_loaded(streams=16)
        bridge = system.cubs[2]  # successor of the cub we'll fail
        system.run_for(10.0)
        system.network.control_bytes_from[bridge.address].snapshot(system.sim.now)
        system.run_for(10.0)
        healthy_rate = system.network.control_bytes_from[bridge.address].snapshot(
            system.sim.now
        )
        system.fail_cub(1)
        system.run_for(20.0)  # past detection
        system.network.control_bytes_from[bridge.address].snapshot(system.sim.now)
        system.run_for(10.0)
        failed_rate = system.network.control_bytes_from[bridge.address].snapshot(
            system.sim.now
        )
        # Small config has decluster 2, so the bridge forwards only
        # one extra mirror state per passing chain (~+25-50%); the
        # paper's ~2x is measured at decluster 4 (see the Fig 9 bench).
        assert failed_rate > 1.15 * healthy_rate
        assert failed_rate < 4.0 * healthy_rate

    def test_new_starts_work_during_failure(self):
        system, client = build_loaded()
        system.fail_cub(1)
        system.run_for(12.0)  # let the deadman fire
        newcomer = client.start_stream(file_id=3)
        system.run_for(20.0)
        monitor = client.streams[newcomer]
        assert monitor.blocks_received > 5

    def test_start_targeted_at_dead_cub_covered_by_successor(self):
        """§4.1.3: the successor holds a redundant copy of the start
        request and acts on it when the primary target is dead."""
        system = TigerSystem(small_config(), seed=21)
        system.add_standard_content(num_files=6, duration_s=240)
        client = system.add_client()
        system.run_for(10.0)
        system.fail_cub(1)
        system.run_for(10.0)  # detection
        # File 1 starts on disk 1, which lives on dead cub 1.
        instance = client.start_stream(file_id=1)
        system.run_for(25.0)
        monitor = client.streams[instance]
        assert monitor.blocks_received > 5

    def test_recovered_cub_rejoins(self):
        system, client = build_loaded()
        system.fail_cub(1)
        system.run_for(30.0)
        system.recover_cub(1)
        system.run_for(30.0)
        # The recovered cub serves blocks again.
        sent_before = system.cubs[1].blocks_sent.count
        system.run_for(20.0)
        assert system.cubs[1].blocks_sent.count > sent_before
        system.finalize_clients()
        system.assert_invariants()


class TestDiskFailure:
    def test_single_disk_covered_without_deadman(self):
        """A live cub detects its own disk failure instantly and takes
        the mirror decision itself — losses should be minimal."""
        system, client = build_loaded()
        before = system.total_client_missed()
        system.fail_disk(1)  # one disk on cub 1
        system.run_for(40.0)
        system.finalize_clients()
        assert system.total_mirror_pieces_sent() > 0
        missed = system.total_client_missed() - before
        assert missed <= 4  # at most the blocks already past their read

    def test_other_disks_on_cub_still_serve(self):
        system, client = build_loaded()
        system.fail_disk(1)
        sent_before = system.cubs[1].blocks_sent.count
        system.run_for(20.0)
        assert system.cubs[1].blocks_sent.count > sent_before


class TestSecondFailures:
    def test_adjacent_double_failure_loses_some_data_but_not_service(self):
        """§2.3: two consecutive failed cubs lose the overlapping mirror
        pieces, but Tiger 'will attempt to continue to send streams'."""
        system, client = build_loaded(duration=300.0)
        system.fail_cub(1)
        system.run_for(20.0)
        system.fail_cub(2)
        system.run_for(40.0)
        system.finalize_clients()
        lost_pieces = sum(
            cub.pieces_lost_to_second_failure.count for cub in system.cubs
        )
        assert lost_pieces > 0
        # Streams still make progress.
        for monitor in client.all_monitors():
            assert monitor.blocks_received > 40

    def test_distant_double_failure_no_data_loss(self):
        system, client = build_loaded(duration=300.0)
        system.fail_cub(0)
        system.run_for(20.0)
        system.fail_cub(2)  # decluster=2 but cubs 0 and 2 share no pieces?
        # In a 4-cub ring with decluster 2, cub 0's pieces live on cubs
        # 1 and 2 — so this IS a vulnerable pair; check the predicate
        # agrees with runtime behaviour instead.
        vulnerable = set(system.mirror.second_failure_vulnerable_cubs(0))
        system.run_for(40.0)
        lost_pieces = sum(
            cub.pieces_lost_to_second_failure.count for cub in system.cubs
        )
        assert (lost_pieces > 0) == (2 in vulnerable)
