"""Tests for the global schedule oracle and the per-cub view (§3, §4.1)."""

import pytest

from repro.core.schedule import GlobalSchedule, SlotConflictError
from repro.core.view import (
    ADMIT_DESCHEDULED,
    ADMIT_DUPLICATE,
    ADMIT_NEW,
    ADMIT_TOO_LATE,
    ScheduleView,
)
from repro.core.viewerstate import DescheduleRequest, ViewerState, mirror_states_for


def make_state(**overrides):
    base = dict(
        viewer_id="v1",
        instance=1,
        slot=3,
        file_id=0,
        block_index=5,
        disk_id=2,
        due_time=10.0,
        play_seqno=5,
    )
    base.update(overrides)
    return ViewerState(**base)


class TestGlobalSchedule:
    def test_insert_then_occupied(self):
        schedule = GlobalSchedule(10)
        schedule.insert(3, "v", 1, 0, 0, 0.0)
        assert not schedule.is_free(3)
        assert schedule.occupant(3).viewer_id == "v"

    def test_double_insert_conflicts(self):
        """The invariant the ownership protocol must uphold."""
        schedule = GlobalSchedule(10)
        schedule.insert(3, "v", 1, 0, 0, 0.0)
        with pytest.raises(SlotConflictError):
            schedule.insert(3, "w", 2, 0, 0, 0.0)

    def test_conditional_remove_semantics(self):
        schedule = GlobalSchedule(10)
        schedule.insert(3, "v", 1, 0, 0, 0.0)
        assert schedule.remove(3, "v", 2) is False  # wrong instance
        assert schedule.remove(3, "w", 1) is False  # wrong viewer
        assert not schedule.is_free(3)
        assert schedule.remove(3, "v", 1) is True
        assert schedule.is_free(3)

    def test_remove_is_idempotent(self):
        schedule = GlobalSchedule(10)
        schedule.insert(3, "v", 1, 0, 0, 0.0)
        assert schedule.remove(3, "v", 1) is True
        assert schedule.remove(3, "v", 1) is False

    def test_remove_unconditional(self):
        schedule = GlobalSchedule(10)
        schedule.insert(3, "v", 1, 0, 0, 0.0)
        entry = schedule.remove_unconditional(3)
        assert entry.viewer_id == "v"
        assert schedule.remove_unconditional(3) is None

    def test_load_and_free_slots(self):
        schedule = GlobalSchedule(4)
        schedule.insert(0, "a", 1, 0, 0, 0.0)
        schedule.insert(2, "b", 2, 0, 0, 0.0)
        assert schedule.load == pytest.approx(0.5)
        assert schedule.free_slots() == (1, 3)
        assert schedule.occupied_slots() == (0, 2)

    def test_out_of_range_slot_rejected(self):
        schedule = GlobalSchedule(4)
        with pytest.raises(ValueError):
            schedule.insert(4, "v", 1, 0, 0, 0.0)
        with pytest.raises(ValueError):
            schedule.is_free(-1)

    def test_consistency_check_passes(self):
        schedule = GlobalSchedule(4)
        schedule.insert(0, "a", 1, 0, 0, 0.0)
        schedule.assert_consistent()


class TestViewAdmission:
    @pytest.fixture
    def view(self):
        return ScheduleView(
            cub_id=0,
            block_play_time=1.0,
            hold_time=3.0,
            is_final=lambda state: state.block_index >= 99,
        )

    def test_new_state_admitted(self, view):
        assert view.admit(make_state(), now=5.0) == ADMIT_NEW

    def test_duplicate_ignored(self, view):
        """"Receiving a viewer state is idempotent: Duplicates are
        ignored" (§4.1.1)."""
        state = make_state()
        view.admit(state, now=5.0)
        assert view.admit(state, now=5.0) == ADMIT_DUPLICATE
        assert view.duplicates_ignored == 1

    def test_descheduled_state_rejected(self, view):
        """"Before accepting a viewer state, a cub checks to see if it
        is holding a deschedule for that viewer in that slot" (§4.1.2)."""
        request = DescheduleRequest("v1", 1, 3, issue_time=0.0)
        view.apply_deschedule(request, expiry=100.0)
        assert view.admit(make_state(), now=5.0) == ADMIT_DESCHEDULED

    def test_very_late_state_discarded(self, view):
        """A state arriving after deschedules would have been dropped
        is itself dropped (the "spontaneous deschedule" rule)."""
        state = make_state(due_time=1.0)
        assert view.admit(state, now=10.0) == ADMIT_TOO_LATE
        assert view.states_discarded_late == 1

    def test_deschedule_of_other_instance_does_not_block(self, view):
        request = DescheduleRequest("v1", 99, 3, issue_time=0.0)
        view.apply_deschedule(request, expiry=100.0)
        assert view.admit(make_state(), now=5.0) == ADMIT_NEW

    def test_mirror_admission_mirrors_rules(self, view):
        mirror = mirror_states_for(make_state(), 2, 56, 1.0)[0]
        assert view.admit_mirror(mirror, now=5.0) == ADMIT_NEW
        assert view.admit_mirror(mirror, now=5.0) == ADMIT_DUPLICATE


class TestOccupancy:
    @pytest.fixture
    def view(self):
        return ScheduleView(
            cub_id=0,
            block_play_time=1.0,
            hold_time=3.0,
            is_final=lambda state: state.block_index >= 99,
        )

    def test_empty_slot_free(self, view):
        assert not view.occupied_at(3, visit_time=10.0)

    def test_state_at_visit_occupies(self, view):
        view.admit(make_state(due_time=10.0), now=5.0)
        assert view.occupied_at(3, visit_time=10.0)

    def test_future_state_occupies(self, view):
        view.admit(make_state(due_time=11.0), now=5.0)
        assert view.occupied_at(3, visit_time=10.0)

    def test_previous_visit_nonfinal_occupies(self, view):
        """A redundant copy from the previous visit implies the viewer
        continues — conservative occupancy."""
        view.admit(make_state(due_time=9.0), now=5.0)
        assert view.occupied_at(3, visit_time=10.0)

    def test_previous_visit_final_frees(self, view):
        """A final block at the previous visit means the play ended:
        the slot is reusable at this visit."""
        view.admit(make_state(due_time=9.0, block_index=99), now=5.0)
        assert not view.occupied_at(3, visit_time=10.0)

    def test_ancient_state_frees(self, view):
        view.admit(make_state(due_time=5.0), now=5.0)
        assert not view.occupied_at(3, visit_time=10.0)

    def test_deschedule_frees_slot(self, view):
        view.admit(make_state(due_time=10.0), now=5.0)
        view.apply_deschedule(DescheduleRequest("v1", 1, 3, 5.0), expiry=100.0)
        assert not view.occupied_at(3, visit_time=10.0)

    def test_reservation_occupies(self, view):
        view.reserve_slot(3, until=20.0)
        assert view.occupied_at(3, visit_time=10.0)
        view.release_slot(3)
        assert not view.occupied_at(3, visit_time=10.0)

    def test_latest_due_wins(self, view):
        view.admit(make_state(due_time=9.0, play_seqno=4, block_index=4), now=5.0)
        view.admit(make_state(due_time=10.0, play_seqno=5), now=5.0)
        assert view.state_for_slot(3).due_time == 10.0


class TestPruning:
    def test_view_stays_bounded(self):
        """The §4 scalability condition: view size must not grow with
        the amount of schedule history seen."""
        view = ScheduleView(0, 1.0, hold_time=3.0, is_final=lambda s: False)
        for seqno in range(5000):
            state = make_state(
                play_seqno=seqno, block_index=seqno, due_time=float(seqno) / 10.0
            )
            view.admit(state, now=float(seqno) / 10.0)
            if seqno % 50 == 0:
                view.prune(now=float(seqno) / 10.0)
        view.prune(now=500.0)
        assert view.size() < 200

    def test_tombstones_expire(self):
        view = ScheduleView(0, 1.0, hold_time=3.0, is_final=lambda s: False)
        view.apply_deschedule(DescheduleRequest("v1", 1, 3, 0.0), expiry=5.0)
        assert view.has_tombstone("v1", 1, 3)
        view.prune(now=6.0)
        assert not view.has_tombstone("v1", 1, 3)

    def test_duplicate_deschedule_reports_false(self):
        view = ScheduleView(0, 1.0, hold_time=3.0, is_final=lambda s: False)
        request = DescheduleRequest("v1", 1, 3, 0.0)
        assert view.apply_deschedule(request, expiry=5.0) is True
        assert view.apply_deschedule(request, expiry=5.0) is False
