"""Shared fixtures for the Tiger reproduction test suite."""

from __future__ import annotations

import pytest

from repro import TigerSystem, paper_config, small_config
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def small_system() -> TigerSystem:
    """A 4-cub system with content, ready to run."""
    system = TigerSystem(small_config(), seed=7)
    system.add_standard_content(num_files=6, duration_s=90)
    return system


@pytest.fixture
def loaded_system(small_system: TigerSystem) -> TigerSystem:
    """Small system with a client and a dozen playing streams."""
    client = small_system.add_client()
    for index in range(12):
        client.start_stream(file_id=index % 6)
    small_system.run_for(10.0)
    return small_system


def paper_system(**overrides) -> TigerSystem:
    """Helper (not a fixture): the 14-cub paper configuration."""
    system = TigerSystem(paper_config(**overrides), seed=11)
    return system
