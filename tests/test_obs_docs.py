"""The instrumentation surface stays documented, loadable, and stable.

* every trace category and metric family a fault-injected run emits
  must be named (in backticks) in docs/OBSERVABILITY.md;
* ``python -m repro chaos --trace out.json`` must write a Chrome trace
  that ``json.load`` accepts and a trace viewer can open;
* the Sphinx API docs must build warning-free (skipped when sphinx is
  not installed — CI runs it);
* the ASCII renderers must be byte-stable for a fixed seed.
"""

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import TigerSystem, small_config
from repro.analysis.render import (
    render_disk_schedule,
    render_metrics_table,
    render_view_summary,
)
from repro.faults import ChaosHarness, standard_chaos_plan
from repro.sim.trace import Tracer
from repro.workloads import ContinuousWorkload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OBSERVABILITY_MD = REPO_ROOT / "docs" / "OBSERVABILITY.md"

#: The complete category inventory — call sites in src/repro must not
#: invent names outside this list without documenting them.
ALL_CATEGORIES = {
    "admission.reject",
    "block.miss",
    "block.service",
    "deadman",
    "deadman.resurrect",
    "deschedule",
    "disk.fail",
    "disk.recover",
    "disk.slow",
    "disk.stuck",
    "disk.unstuck",
    "failover",
    "failover.relay",
    "fault.inject",
    "helper.evict",
    "helper.fallback",
    "helper.fill",
    "helper.hit",
    "helper.invalidate",
    "helper.miss",
    "helper.serve",
    "insert",
    "invariant.violation",
    "mirror.cover",
    "net.deliver",
    "net.reorder",
    "restripe.abort",
    "restripe.done",
    "restripe.move",
    "restripe.pause",
    "restripe.resume",
    "restripe.retry",
    "restripe.suspend",
    "vstate.forward",
}


def run_traced_chaos():
    tracer = Tracer(capacity=500_000)
    tracer.enable()
    harness = ChaosHarness(
        small_config(),
        standard_chaos_plan(duration=40.0),
        seed=0,
        load=0.5,
        duration=40.0,
        num_files=4,
        file_seconds=60.0,
        tracer=tracer,
    )
    harness.run()
    return tracer, harness


class TestDocCoverage:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        return run_traced_chaos()

    def test_emitted_categories_documented(self, chaos_run):
        tracer, _ = chaos_run
        doc = OBSERVABILITY_MD.read_text()
        emitted = tracer.categories()
        assert emitted, "chaos run emitted no trace records"
        missing = {c for c in emitted if f"`{c}`" not in doc}
        assert not missing, (
            f"trace categories emitted but missing from "
            f"docs/OBSERVABILITY.md: {sorted(missing)}"
        )

    def test_emitted_metric_families_documented(self, chaos_run):
        _, harness = chaos_run
        doc = OBSERVABILITY_MD.read_text()
        names = harness.system.registry.names()
        assert names, "chaos run registered no metrics"
        missing = {n for n in names if f"`{n}`" not in doc}
        assert not missing, (
            f"metric families registered but missing from "
            f"docs/OBSERVABILITY.md: {sorted(missing)}"
        )

    def test_known_inventory_documented(self):
        # Categories that a short run doesn't reach (stuck disks,
        # invariant violations...) still belong in the reference.
        doc = OBSERVABILITY_MD.read_text()
        missing = {c for c in ALL_CATEGORIES if f"`{c}`" not in doc}
        assert not missing

    def test_emitted_categories_are_in_known_inventory(self, chaos_run):
        tracer, _ = chaos_run
        unknown = tracer.categories() - ALL_CATEGORIES
        assert not unknown, (
            f"new trace categories need documenting: {sorted(unknown)}"
        )


class TestCliTrace:
    def test_python_m_repro_chaos_writes_chrome_trace(self, tmp_path):
        out = tmp_path / "out.json"
        metrics = tmp_path / "metrics.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "chaos",
                "--seconds", "30", "--files", "4",
                "--trace", str(out), "--metrics-out", str(metrics),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events[0]["args"]["name"] == "tiger"
        phases = {e["ph"] for e in events}
        assert "i" in phases and "X" in phases  # instants and spans
        assert any(e.get("cat") == "fault.inject" for e in events)
        snapshot = json.loads(metrics.read_text())
        assert "cub.blocks_sent" in snapshot


class TestSphinxDocs:
    @pytest.mark.skipif(
        importlib.util.find_spec("sphinx") is None,
        reason="sphinx not installed (CI docs job runs this)",
    )
    def test_sphinx_build_warning_free(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "sphinx",
                "-W", "-b", "html",
                str(REPO_ROOT / "docs"), str(tmp_path / "html"),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestRenderStability:
    @staticmethod
    def render_everything(seed: int) -> str:
        system = TigerSystem(small_config(), seed=seed)
        system.add_standard_content(num_files=4, duration_s=60.0)
        workload = ContinuousWorkload(system)
        workload.add_streams(8)
        system.run_for(12.0)
        occupancy = {
            slot: system.oracle.occupant(slot).viewer_id
            for slot in system.oracle.occupied_slots()
        }
        system.export_metrics()
        return "\n\n".join(
            [
                render_disk_schedule(system.clock, occupancy, system.sim.now),
                render_view_summary(system),
                render_metrics_table(system.registry.snapshot()),
            ]
        )

    def test_same_seed_renders_byte_identical(self):
        assert self.render_everything(7) == self.render_everything(7)

    def test_metrics_table_formats_kinds(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("a.count", unit="blocks", cub=1).increment(3)
        registry.gauge("b.level", unit="ratio").set(0.5)
        registry.histogram("c.lat", unit="s").observe(1.0)
        table = render_metrics_table(registry.snapshot())
        assert "a.count{cub=1}" in table
        assert "blocks" in table
        assert "n=1" in table
        assert render_metrics_table({}) == "(no metrics recorded)"
