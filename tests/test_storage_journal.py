"""Unit tests for the write-ahead move journal (storage/journal.py)."""

from __future__ import annotations

import json

import pytest

from repro.storage.journal import JournalError, MoveJournal


class TestLifecycle:
    def test_intent_then_commit(self):
        journal = MoveJournal()
        journal.record_plan("abc", 3)
        journal.record_intent(0)
        journal.record_commit(0)
        assert journal.is_committed(0)
        assert journal.pending_intents() == set()

    def test_double_commit_raises(self):
        journal = MoveJournal()
        journal.record_plan("abc", 1)
        journal.record_intent(0)
        journal.record_commit(0)
        with pytest.raises(JournalError):
            journal.record_commit(0)

    def test_commit_without_intent_raises(self):
        journal = MoveJournal()
        journal.record_plan("abc", 1)
        with pytest.raises(JournalError):
            journal.record_commit(0)

    def test_committed_move_never_reruns(self):
        journal = MoveJournal()
        journal.record_plan("abc", 1)
        journal.record_intent(0)
        journal.record_commit(0)
        with pytest.raises(JournalError):
            journal.record_intent(0)

    def test_pending_intents_are_uncommitted_starts(self):
        journal = MoveJournal()
        journal.record_plan("abc", 4)
        for move in (0, 1, 2):
            journal.record_intent(move)
        journal.record_commit(1)
        assert journal.pending_intents() == {0, 2}

    def test_retry_re_records_intent(self):
        journal = MoveJournal()
        journal.record_plan("abc", 1)
        journal.record_intent(0, attempt=0)
        journal.record_intent(0, attempt=1)
        attempts = [
            r["attempt"] for r in journal.records if r["type"] == "intent"
        ]
        assert attempts == [0, 1]


class TestPlanStamp:
    def test_same_plan_restamp_is_noop(self):
        journal = MoveJournal()
        journal.record_plan("abc", 2)
        journal.record_plan("abc", 2)
        plans = [r for r in journal.records if r["type"] == "plan"]
        assert len(plans) == 1

    def test_different_plan_rejected(self):
        journal = MoveJournal()
        journal.record_plan("abc", 2)
        with pytest.raises(JournalError):
            journal.record_plan("def", 2)


class TestDiskRoundTrip:
    def test_load_missing_file_is_empty(self, tmp_path):
        journal = MoveJournal.load(str(tmp_path / "never-written.jsonl"))
        assert journal.committed == set()
        assert journal.plan_fingerprint is None

    def test_state_survives_reload(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = MoveJournal(path)
        journal.record_plan("abc", 3)
        journal.record_intent(0)
        journal.record_commit(0)
        journal.record_intent(1)
        journal.record_abort("test")
        reloaded = MoveJournal.load(path)
        assert reloaded.plan_fingerprint == "abc"
        assert reloaded.num_moves == 3
        assert reloaded.committed == {0}
        assert reloaded.pending_intents() == {1}
        assert reloaded.aborted

    def test_done_fingerprint_round_trips(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = MoveJournal(path)
        journal.record_plan("abc", 1)
        journal.record_intent(0)
        journal.record_commit(0)
        journal.record_done("deadbeef")
        assert MoveJournal.load(path).done_fingerprint == "deadbeef"

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = MoveJournal(path)
        journal.record_plan("abc", 2)
        journal.record_intent(0)
        journal.record_commit(0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "commit", "mo')  # SIGKILL mid-append
        reloaded = MoveJournal.load(path)
        assert reloaded.committed == {0}
        assert len(reloaded.records) == 3

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = MoveJournal(path)
        journal.record_plan("abc", 1)
        journal.record_intent(0)
        journal.record_commit(0)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert [json.loads(line)["type"] for line in lines] == [
            "plan", "intent", "commit",
        ]
