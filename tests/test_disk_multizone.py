"""Tests for the multi-zone geometry and seek-curve refinements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk.multizone import (
    MultiZoneGeometry,
    Zone,
    expected_random_seek,
    linear_taper_zones,
    seek_time,
)
from repro.disk.zones import ZONE_INNER, ZONE_OUTER


class TestZoneValidation:
    def test_zone_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Zone(0.5, 0.5, 1e6)

    def test_zones_must_tile(self):
        with pytest.raises(ValueError):
            MultiZoneGeometry([Zone(0.0, 0.4, 2e6), Zone(0.5, 1.0, 1e6)])

    def test_zones_must_cover_drive(self):
        with pytest.raises(ValueError):
            MultiZoneGeometry([Zone(0.0, 0.9, 2e6)])

    def test_rates_must_not_increase_inward(self):
        with pytest.raises(ValueError):
            MultiZoneGeometry([Zone(0.0, 0.5, 1e6), Zone(0.5, 1.0, 2e6)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiZoneGeometry([])


class TestTransfer:
    @pytest.fixture
    def drive(self):
        return MultiZoneGeometry(
            [Zone(0.0, 0.5, 2e6), Zone(0.5, 1.0, 1e6)]
        )

    def test_rate_at_positions(self, drive):
        assert drive.rate_at(0.1) == 2e6
        assert drive.rate_at(0.9) == 1e6
        assert drive.rate_at(1.0) == 1e6

    def test_transfer_within_zone(self, drive):
        # 1 MB drive: 0.1 MB read in the fast zone.
        assert drive.transfer_time(0.0, 100_000, 1e6) == pytest.approx(0.05)

    def test_transfer_across_boundary(self, drive):
        # Read 0.2 MB starting at 0.45 on a 1 MB drive: 50 KB fast,
        # 150 KB slow.
        expected = 50_000 / 2e6 + 150_000 / 1e6
        assert drive.transfer_time(0.45, 200_000, 1e6) == pytest.approx(expected)

    def test_read_past_end_rejected(self, drive):
        with pytest.raises(ValueError):
            drive.transfer_time(0.95, 100_000, 1e6)

    def test_mean_rate_weighted(self, drive):
        assert drive.mean_rate() == pytest.approx(1.5e6)
        assert drive.mean_rate(0.0, 0.5) == pytest.approx(2e6)


class TestTwoZoneReduction:
    def test_reduction_preserves_half_read_times(self):
        drive = linear_taper_zones(16, 5.2e6, 3.6e6)
        reduced = drive.to_two_zone()
        capacity = 2.5e9
        half_bytes = int(capacity / 2)
        # Total time to stream each half must match.
        multi_outer = drive.transfer_time(0.0, half_bytes, capacity)
        multi_inner = drive.transfer_time(0.5, half_bytes, capacity)
        assert reduced.transfer_time(ZONE_OUTER, half_bytes) == pytest.approx(
            multi_outer, rel=1e-6
        )
        assert reduced.transfer_time(ZONE_INNER, half_bytes) == pytest.approx(
            multi_inner, rel=1e-6
        )

    def test_reduction_orders_halves(self):
        reduced = linear_taper_zones(8, 5e6, 3e6).to_two_zone()
        assert reduced.outer_rate > reduced.inner_rate

    @given(st.integers(1, 24), st.floats(2e6, 9e6), st.floats(1e6, 2e6))
    @settings(max_examples=40, deadline=None)
    def test_taper_always_valid(self, zones, outer, inner):
        drive = linear_taper_zones(zones, outer, inner)
        assert drive.rate_at(0.0) >= drive.rate_at(1.0) - 1e-6
        assert inner - 1e-6 <= drive.mean_rate() <= outer + 1e-6


class TestSeekCurve:
    def test_zero_distance_zero_time(self):
        assert seek_time(0.0) == 0.0

    def test_monotone_in_distance(self):
        samples = [seek_time(d / 100) for d in range(1, 101)]
        assert samples == sorted(samples)

    def test_endpoints(self):
        assert seek_time(1.0) == pytest.approx(0.016)
        assert seek_time(1e-9) >= 0.0015

    def test_short_seeks_concave(self):
        """Square-root regime: doubling a short distance less than
        doubles the added time."""
        base = seek_time(0.05) - 0.0015
        doubled = seek_time(0.10) - 0.0015
        assert doubled < 2 * base

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            seek_time(1.5)
        with pytest.raises(ValueError):
            seek_time(0.5, min_seek=0.02, max_seek=0.01)

    def test_expected_random_seek_in_range(self):
        mean = expected_random_seek()
        assert 0.0015 < mean < 0.016
        # Mean stroke is 1/3; the curve's concavity puts the mean seek
        # above the linear interpolation... below max, above min third.
        assert mean > 0.0015 + (0.016 - 0.0015) * 0.2

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_seek_bounded(self, distance):
        value = seek_time(distance)
        assert 0.0 <= value <= 0.016 + 1e-12
