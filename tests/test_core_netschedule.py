"""Tests for the multi-bitrate network schedule (§3.2, §4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.netschedule import NetScheduleNode, NetworkSchedule
from repro.net.switch import SwitchedNetwork
from repro.sim.rng import RngRegistry

LENGTH = 14.0  # 14 cubs x 1 s block play time
CAPACITY = 10e6  # a 10 Mbit/s NIC for readable numbers
WIDTH = 1.0


@pytest.fixture
def schedule():
    return NetworkSchedule(LENGTH, CAPACITY, WIDTH)


class TestLoadGeometry:
    def test_empty_schedule_no_load(self, schedule):
        assert schedule.load_at(3.0) == 0.0

    def test_entry_covers_its_window(self, schedule):
        schedule.insert("v", 2.0, 3e6)
        assert schedule.load_at(2.5) == pytest.approx(3e6)
        assert schedule.load_at(3.5) == 0.0

    def test_wraparound_entry(self, schedule):
        schedule.insert("v", 13.5, 3e6)
        assert schedule.load_at(13.7) == pytest.approx(3e6)
        assert schedule.load_at(0.2) == pytest.approx(3e6)
        assert schedule.load_at(0.6) == 0.0

    def test_overlapping_entries_stack(self, schedule):
        """Figure 4: the height of a vertical slice is the NIC load."""
        schedule.insert("a", 2.0, 3e6)
        schedule.insert("b", 2.5, 2e6)
        assert schedule.load_at(2.7) == pytest.approx(5e6)

    def test_peak_load_in_window(self, schedule):
        schedule.insert("a", 2.0, 3e6)
        schedule.insert("b", 2.5, 2e6)
        assert schedule.peak_load_in(2.0, 1.0) == pytest.approx(5e6)
        assert schedule.peak_load_in(4.0, 1.0) == 0.0

    def test_headroom(self, schedule):
        schedule.insert("a", 2.0, 3e6)
        assert schedule.headroom_at(2.0) == pytest.approx(7e6)


class TestInsertion:
    def test_insert_rejected_when_over_capacity(self, schedule):
        schedule.insert("a", 2.0, 6e6)
        assert not schedule.can_insert(2.5, 5e6)
        with pytest.raises(ValueError):
            schedule.insert("b", 2.5, 5e6)

    def test_insert_allowed_elsewhere(self, schedule):
        schedule.insert("a", 2.0, 6e6)
        assert schedule.can_insert(5.0, 8e6)

    def test_remove_frees_capacity(self, schedule):
        entry = schedule.insert("a", 2.0, 6e6)
        schedule.remove(entry.entry_id)
        assert schedule.can_insert(2.0, 10e6)

    def test_remove_unknown_is_false(self, schedule):
        assert schedule.remove(9999) is False

    def test_nonpositive_bitrate_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.insert("a", 0.0, 0.0)

    def test_utilization(self, schedule):
        schedule.insert("a", 0.0, 5e6)
        # 5 Mbit for 1 s out of 10 Mbit x 14 s.
        assert schedule.utilization() == pytest.approx(5 / 140)


class TestFragmentation:
    """The §3.2 claim: unquantized starts fragment the schedule;
    quantizing to block_play_time/decluster keeps it usable."""

    def test_gap_shorter_than_width_unusable(self, schedule):
        """The paper's Figure 4 example: a sub-block-play-time gap
        cannot take any entry."""
        schedule.insert("a", 0.0, 6e6)
        schedule.insert("b", 0.9, 4e6)  # gap of 0.9 < 1.0 before b at 6 Mbit level
        # A 5 Mbit/s stream cannot start in [0,. 0.9): window hits both.
        assert not schedule.can_insert(0.1, 5e6)

    def test_find_offset_unquantized(self, schedule):
        schedule.insert("a", 0.0, 6e6)
        offset = schedule.find_offset(5e6, after=0.0)
        assert offset is not None
        assert schedule.can_insert(offset, 5e6)

    def test_find_offset_quantized_on_grid(self, schedule):
        offset = schedule.find_offset(5e6, after=0.3, quantum=0.25)
        assert offset is not None
        assert (offset / 0.25) == pytest.approx(round(offset / 0.25))

    def test_find_offset_none_when_full(self, schedule):
        for step in range(14):
            schedule.insert(f"v{step}", float(step), 10e6)
        assert schedule.find_offset(1e6) is None

    def test_bad_quantum_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.find_offset(1e6, quantum=0.0)
        with pytest.raises(ValueError):
            schedule.find_offset(1e6, quantum=0.3)  # does not divide 14

    def test_quantized_packs_better_than_adversarial_arbitrary(self):
        """Admit identical greedy request sequences; arbitrary offsets
        strand bandwidth that the quantized grid can still use."""
        rng = RngRegistry(3).stream("frag")
        quantized = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        arbitrary = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        requests = [(rng.uniform(0, LENGTH), rng.choice([1e6, 2e6, 3e6])) for _ in range(200)]
        for where, rate in requests:
            spot = arbitrary.find_offset(rate, after=where)
            if spot is not None:
                arbitrary.insert("v", spot, rate)
            spot = quantized.find_offset(rate, after=where, quantum=0.25)
            if spot is not None:
                quantized.insert("v", spot, rate)
        assert quantized.utilization() >= arbitrary.utilization() - 0.02

    @given(st.lists(st.tuples(st.floats(0, LENGTH), st.sampled_from([1e6, 2e6, 4e6])), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, requests):
        """Invariant: accepted entries never overload any slice."""
        schedule = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
        for where, rate in requests:
            if schedule.can_insert(where, rate):
                schedule.insert("v", where, rate)
        for check in range(140):
            assert schedule.load_at(check * 0.1) <= CAPACITY + 1e-6


class TestDistributedInsertion:
    """The §4.2 tentative-insert handshake."""

    def build(self, sim, rngs, nodes=3):
        network = SwitchedNetwork(sim, rngs, base_latency=0.001, latency_jitter=0.0)
        cubs = [
            NetScheduleNode(sim, index, nodes, network, LENGTH, CAPACITY, WIDTH)
            for index in range(nodes)
        ]
        for cub in cubs:
            network.register(cub, 155e6)
        return network, cubs

    def test_commit_updates_both_views(self, sim, rngs):
        network, cubs = self.build(sim, rngs)
        results = []
        cubs[0].try_insert("viewer", 2.0, 3e6, on_done=results.append)
        sim.run()
        assert results == [True]
        assert cubs[0].commits == 1
        assert cubs[0].view.load_at(2.5) == pytest.approx(3e6)
        assert cubs[1].view.load_at(2.5) == pytest.approx(3e6)
        # And the successor's entry is a real one, not a reservation.
        assert all(not entry.reservation for entry in cubs[1].view.entries())

    def test_local_rejection_is_immediate(self, sim, rngs):
        network, cubs = self.build(sim, rngs)
        cubs[0].view.insert("existing", 2.0, 10e6)
        results = []
        ok = cubs[0].try_insert("viewer", 2.0, 3e6, on_done=results.append)
        assert ok is False
        assert results == [False]
        assert cubs[0].rejections_local == 1

    def test_successor_refusal_aborts(self, sim, rngs):
        """The successor's view can rule out what the originator's
        allows — the §4.2 coordination case."""
        network, cubs = self.build(sim, rngs)
        cubs[1].view.insert("elsewhere", 2.0, 10e6)  # only successor knows
        results = []
        cubs[0].try_insert("viewer", 2.0, 3e6, on_done=results.append)
        sim.run()
        assert results == [False]
        assert cubs[0].aborts == 1
        # The tentative entry was rolled back.
        assert cubs[0].view.load_at(2.5) == 0.0

    def test_timeout_aborts_and_releases_reservation(self, sim, rngs):
        network, cubs = self.build(sim, rngs)
        network.partition("netcub:1", "netcub:0")  # replies lost
        results = []
        cubs[0].try_insert("viewer", 2.0, 3e6, on_done=results.append)
        sim.run(until=5.0)
        assert results == [False]
        assert cubs[0].aborts == 1
        assert cubs[0].view.load_at(2.5) == 0.0

    def test_concurrent_inserts_capacity_respected(self, sim, rngs):
        """Two cubs racing for the same window: the successor's view
        serializes them; total committed never exceeds capacity."""
        network, cubs = self.build(sim, rngs)
        for round_index in range(4):
            cubs[0].try_insert(f"a{round_index}", 2.0, 4e6)
            cubs[2].try_insert(f"b{round_index}", 2.0, 4e6)
            sim.run()
        # Independent successors (1 and 0) bound their own views.
        for cub in cubs:
            assert cub.view.load_at(2.5) <= CAPACITY + 1e-6
