"""Slot-placement policies and the slot-machinery bugfix sweep.

Covers the `PlacementPolicy` contract (`repro/core/placement.py`) —
policies only ever claim free slots, first-fit is bit-identical to the
historical behavior, and the three policies diverge deterministically —
plus regressions for the bugs fixed alongside the refactor:

* a stale ``stop_viewer`` keyed by slot must not evict a later start
  that reused the slot (centralized baseline);
* startup latency is measured from the *client's* request time, not
  from admission time, on both the primary and the failover path, and
  still-queued starts enter fig-10 as censored waits;
* VCR pause releases the slot (deschedule + bookmark) so a queued
  start can claim it;
* ``NetworkSchedule.peak_load_in`` probes entries within float fuzz of
  the window top (skipping them let ``can_insert`` admit past NIC
  capacity).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import TigerSystem, small_config
from repro.config import PLACEMENT_POLICIES
from repro.core.netschedule import NetworkSchedule
from repro.core.placement import (
    DeadlineGreedyPolicy,
    FirstFitPolicy,
    LoadSpreadPolicy,
    SlotCandidate,
    make_placement_policy,
    neighbor_offsets,
    ring_crowding,
)
from repro.faults import ChaosHarness, standard_chaos_plan
from repro.obs.registry import snapshot_total
from repro.sim.rng import RngRegistry

from tests.test_core_centralized import build_centralized

#: The protocol counters the bench harness gates on; the differential
#: below compares them across policies.
PROTOCOL_COUNTERS = (
    "cub.viewer_states_forwarded",
    "cub.deschedules_forwarded",
    "cub.inserts_performed",
    "cub.admission_rejects",
    "cub.mirror_covers",
    "cub.blocks_sent",
    "cub.deadman_resurrections",
)

#: Chaos fingerprints of the pre-policy code at 95% load (seeds 0, 1).
#: The first-fit default must keep these bit-identical: any drift means
#: the refactor changed observable behavior.
FIRST_FIT_BASELINE_FINGERPRINTS = {
    0: "29d212ddd9921abc32ded9e1a9baa24976f048ee1ae04578d7fc2a07e36b2d82",
    1: "8779deb214dc51b2a623700807c6d8e2c375607a8c1ae0207c630a402e0f61a4",
}


# ======================================================================
# Policy contract units
# ======================================================================


class _Request:
    def __init__(self, instance, request_time):
        self.instance = instance
        self.request_time = request_time


def _random_candidates(rng, count):
    return [
        SlotCandidate(
            slot=index,
            visit=rng.uniform(0.0, 20.0),
            rank=index,
            crowding=float(rng.randrange(5)),
        )
        for index in range(count)
    ]


class TestPolicyContract:
    def test_factory_builds_every_policy(self):
        for name in PLACEMENT_POLICIES:
            policy = make_placement_policy(name)
            assert policy.name == name
            assert policy.lookahead >= 1
        with pytest.raises(ValueError):
            make_placement_policy("best-fit")

    @pytest.mark.parametrize("name", PLACEMENT_POLICIES)
    def test_choose_returns_only_offered_candidates(self, name):
        """Property: a policy may only pick among the free candidates
        the admitter enumerated — it can never invent (or evict into)
        a slot it was not offered."""
        policy = make_placement_policy(name)
        rng = RngRegistry(99).stream(f"candidates-{name}")
        for trial in range(200):
            candidates = _random_candidates(rng, 1 + rng.randrange(6))
            chosen = policy.choose(candidates)
            assert chosen in candidates
        assert policy.choose([]) is None

    @pytest.mark.parametrize("name", PLACEMENT_POLICIES)
    def test_patience_degenerates_to_first_fit(self, name):
        policy = make_placement_policy(name)
        rng = RngRegistry(7).stream("patience")
        candidates = _random_candidates(rng, 5)
        chosen = policy.choose(candidates, waited=2.0, patience=1.0)
        assert chosen == candidates[0]

    def test_first_fit_always_rank_zero(self):
        policy = FirstFitPolicy()
        rng = RngRegistry(3).stream("ff")
        for trial in range(50):
            candidates = _random_candidates(rng, 1 + rng.randrange(6))
            assert policy.choose(candidates) == candidates[0]

    def test_deadline_greedy_serves_oldest_request(self):
        policy = DeadlineGreedyPolicy()
        requests = [_Request(1, 5.0), _Request(2, 1.5), _Request(3, 3.0)]
        assert policy.select_request(requests, now=10.0) == 1
        # FIFO on ties (within float tolerance): index 0 wins.
        tied = [_Request(1, 2.0), _Request(2, 2.0)]
        assert policy.select_request(tied, now=10.0) == 0
        # Slot-wise it takes the soonest visit — first-fit's choice on
        # a legacy-ordered list.
        candidates = [
            SlotCandidate(4, 1.0, 0),
            SlotCandidate(9, 2.5, 1),
        ]
        assert policy._pick(candidates) == candidates[0]

    def test_load_spread_prefers_uncrowded_slot(self):
        policy = LoadSpreadPolicy()
        candidates = [
            SlotCandidate(0, 1.0, 0, crowding=3.0),
            SlotCandidate(1, 2.0, 1, crowding=0.0),
            SlotCandidate(2, 3.0, 2, crowding=0.0),
        ]
        # Least crowding wins; ties break toward the earlier rank.
        assert policy._pick(candidates) == candidates[1]

    def test_ring_crowding_counts_neighbors(self):
        occupied = [True, False, True, False, False, False, True, True]
        assert ring_crowding(occupied, 0) == 3.0  # slots 6, 7, 2
        assert ring_crowding(occupied, 4) == 2.0  # slots 2, 6
        assert neighbor_offsets() == [-2, -1, 1, 2]


# ======================================================================
# First-fit bit-identity + cross-policy differential
# ======================================================================


def _chaos_report(seed, placement="first-fit"):
    config = dataclasses.replace(small_config(), placement=placement)
    harness = ChaosHarness(
        config,
        standard_chaos_plan(duration=30.0),
        seed=seed,
        load=0.95,
        duration=30.0,
        num_files=4,
        file_seconds=60.0,
    )
    return harness.run()


@pytest.mark.parametrize("seed", sorted(FIRST_FIT_BASELINE_FINGERPRINTS))
def test_first_fit_fingerprint_matches_pre_policy_baseline(seed):
    """The refactor acceptance bar: with the default policy the chaos
    suite must replay bit-identically to the pre-policy code."""
    report = _chaos_report(seed)
    assert report.fingerprint == FIRST_FIT_BASELINE_FINGERPRINTS[seed]


def _churn_counters(placement, seed):
    """A failover-free VCR-churn run; returns the 7 gated counters."""
    config = dataclasses.replace(small_config(), placement=placement)
    system = TigerSystem(config, seed=seed)
    system.add_standard_content(num_files=5, duration_s=120.0)
    client = system.add_client()
    rng = RngRegistry(seed).stream("placement-differential")

    active, paused = [], []
    for _ in range(30):
        roll = rng.random()
        if roll < 0.4 and len(active) < config.num_slots - 2:
            active.append(client.start_stream(rng.randrange(5)))
        elif roll < 0.6 and active:
            victim = active.pop(rng.randrange(len(active)))
            if client.pause_stream(victim) is not None:
                paused.append(victim)
        elif roll < 0.8 and paused:
            resumed = client.resume_stream(paused.pop(rng.randrange(len(paused))))
            if resumed is not None:
                active.append(resumed)
        elif active:
            client.stop_stream(active.pop(rng.randrange(len(active))))
        system.run_for(rng.uniform(0.3, 1.2))
    system.run_for(10.0)
    system.finalize_clients()
    system.assert_invariants()

    snapshot = system.export_metrics().snapshot()
    return {
        name: int(snapshot_total(snapshot, name)) for name in PROTOCOL_COUNTERS
    }


@pytest.mark.parametrize("seed", [0, 1])
def test_policy_differential_on_protocol_counters(seed):
    """3-policy differential on the bench-gated protocol counters.

    Under VCR churn with no failover, cub wait queues stay in request-
    time order, so deadline-greedy's EDF request selection is FIFO and
    its lookahead-1 slot choice is first-fit's — the two must agree on
    every counter.  Load-spread may defer inserts but must still run
    the identical workload coherently (the `assert_invariants` inside
    each run holds the no-double-booking oracle for every policy).
    """
    counters = {
        policy: _churn_counters(policy, seed) for policy in PLACEMENT_POLICIES
    }
    assert counters["deadline-greedy"] == counters["first-fit"]
    for policy, values in counters.items():
        assert values["cub.inserts_performed"] > 0, policy
        assert values["cub.blocks_sent"] > 0, policy
        assert values["cub.deadman_resurrections"] == 0, policy
        assert all(value >= 0 for value in values.values()), policy


# ======================================================================
# Satellite 1: stale stop_viewer must not evict the slot's new occupant
# ======================================================================


class TestStaleStopRegression:
    def test_stale_stop_does_not_evict_reused_slot(self, sim, rngs):  # noqa: F811
        config = small_config()
        network, controller, cubs, catalog = build_centralized(
            sim, rngs, config
        )
        catalog.add_file("movie", 2e6, 60.0)
        # Fill the schedule completely so the next start must reuse the
        # exact slot the stop frees.
        for index in range(config.num_slots):
            assert controller.start_viewer(f"client:0#{index}", index, 0)
        victim_slot = next(
            slot
            for slot in range(config.num_slots)
            if controller.schedule.occupant(slot).instance == 3
        )
        controller.stop_viewer(3, victim_slot)
        assert controller.schedule.is_free(victim_slot)
        assert controller.start_viewer("client:0#999", 999, 0)
        occupant = controller.schedule.occupant(victim_slot)
        assert occupant is not None and occupant.instance == 999

        # The regression: a duplicate/stale stop for the *old* instance
        # arrives after the slot was reused.  Keyed-by-slot removal used
        # to evict instance 999; the occupant-identity check must keep
        # it scheduled.
        controller.stop_viewer(3, victim_slot)
        occupant = controller.schedule.occupant(victim_slot)
        assert occupant is not None and occupant.instance == 999

    def test_legitimate_stop_still_frees_slot(self, sim, rngs):  # noqa: F811
        config = small_config()
        network, controller, cubs, catalog = build_centralized(
            sim, rngs, config
        )
        catalog.add_file("movie", 2e6, 60.0)
        assert controller.start_viewer("client:0#1", 1, 0)
        slot = controller.schedule.occupied_slots()[0]
        controller.stop_viewer(1, slot)
        assert controller.schedule.is_free(slot)


# ======================================================================
# Satellite 2: latency from the client's request time, queued waits in
# ======================================================================


class TestRequestTimeLatency:
    def test_queued_wait_charged_to_startup_latency(self):
        """A start queued behind a full schedule is charged its whole
        wait — from the client's request, not from when a slot freed."""
        system = TigerSystem(small_config(), seed=11)
        system.add_standard_content(num_files=5, duration_s=120.0)
        client = system.add_client()
        active = [
            client.start_stream(index % 5)
            for index in range(system.config.num_slots)
        ]
        system.run_for(12.0)

        requested_at = system.sim.now
        queued = client.start_stream(0)
        system.run_for(5.0)  # still full: the start waits, queued
        assert client.streams[queued].startup_latency is None
        client.stop_stream(active[0])
        system.run_for(10.0)

        latency = client.streams[queued].startup_latency
        assert latency is not None
        # The slot only freed 5 s after the request; admission-time
        # stamping would report well under that.
        assert latency >= 5.0 - 1e-9
        assert client.streams[queued].request_time == pytest.approx(
            requested_at
        )

    def test_failover_retry_keeps_original_request_time(self):
        """The backup controller must honor the request_time carried in
        the retried ClientStart instead of stamping its own receive
        time — the dead-window wait belongs in the histogram."""
        system = TigerSystem(small_config(), seed=12)
        system.add_standard_content(num_files=5, duration_s=120.0)
        system.enable_controller_backup()
        client = system.add_client()
        for index in range(4):
            client.start_stream(index % 5)
        system.run_for(10.0)

        system.fail_controller()
        system.run_for(0.5)
        requested_at = system.sim.now
        instance = client.start_stream(0)
        # Dead window: the request is retried against the backup after
        # takeover; at this light load it is served promptly once it
        # lands.
        system.run_for(14.0)

        monitor = client.streams[instance]
        assert monitor.first_block_time is not None
        assert monitor.request_time == pytest.approx(requested_at)
        # The measured latency must include the multi-second dead
        # window, not just the post-landing service time.
        assert monitor.startup_latency >= 4.0
        # The regression proper: the backup's play record must carry
        # the client's original request time, not the backup's receive
        # time (which is at least one 2 s ack-timeout retry later) —
        # deadline-greedy's EDF ordering depends on it.
        record = system.backup_controller.plays[instance]
        assert record.request_time == pytest.approx(requested_at)


# ======================================================================
# Satellite 3: pause releases the slot for queued starts
# ======================================================================


class TestPauseReclaimsSlot:
    def test_pause_frees_slot_for_queued_start(self):
        system = TigerSystem(small_config(), seed=13)
        system.add_standard_content(num_files=5, duration_s=120.0)
        client = system.add_client()
        active = [
            client.start_stream(index % 5)
            for index in range(system.config.num_slots)
        ]
        system.run_for(12.0)

        queued = client.start_stream(1)
        system.run_for(4.0)
        assert client.streams[queued].startup_latency is None

        resume_block = client.pause_stream(active[0])
        assert resume_block is not None
        system.run_for(10.0)

        # The paused viewer's deschedule freed its slot; the queued
        # start claimed it.
        assert client.streams[queued].startup_latency is not None
        system.finalize_clients()
        system.assert_invariants()

    def test_resume_is_a_fresh_instance_at_bookmark(self):
        system = TigerSystem(small_config(), seed=14)
        system.add_standard_content(num_files=5, duration_s=120.0)
        client = system.add_client()
        instance = client.start_stream(2)
        system.run_for(6.0)
        resume_block = client.pause_stream(instance)
        assert resume_block is not None and resume_block > 0
        system.run_for(2.0)
        resumed = client.resume_stream(instance)
        assert resumed is not None and resumed != instance
        assert client.streams[resumed].first_block == resume_block
        system.run_for(5.0)
        assert client.streams[resumed].first_block_time is not None


# ======================================================================
# NetworkSchedule capacity probe regression
# ======================================================================


class TestPeakLoadFuzzRegression:
    def test_entry_within_fuzz_of_window_top_is_probed(self):
        """Falsifying example from the capacity property: an entry at
        ``hi - ulp`` overlaps the probe window, and skipping it as a
        probe point let ``can_insert`` under-count the peak and admit a
        third 4 Mbit/s stream over an 8 Mbit/s NIC."""
        schedule = NetworkSchedule(length=14.0, capacity_bps=8e6, width=1.0)
        schedule.insert("a", 13.5, 4e6)
        schedule.insert("b", 13.999999999999998, 4e6)
        # Both existing entries cover the position of entry "b": load
        # there is already at capacity.
        assert schedule.load_at(13.999999999999998) == pytest.approx(8e6)
        assert not schedule.can_insert(13.5, 4e6)
        with pytest.raises(ValueError):
            schedule.insert("c", 13.5, 4e6)

    def test_capacity_never_exceeded_under_greedy_fill(self):
        rng = RngRegistry(21).stream("netfill")
        schedule = NetworkSchedule(length=14.0, capacity_bps=8e6, width=1.0)
        offsets = []
        for trial in range(300):
            offset = rng.uniform(0.0, 14.0)
            if schedule.can_insert(offset, 4e6):
                schedule.insert(f"v{trial}", offset, 4e6)
                offsets.append(offset % 14.0)
        assert offsets
        for position in offsets:
            assert schedule.load_at(position) <= 8e6 + 1e-3

    def test_find_offsets_prefix_matches_find_offset(self):
        schedule = NetworkSchedule(length=14.0, capacity_bps=8e6, width=1.0)
        schedule.insert("a", 2.0, 4e6)
        schedule.insert("b", 5.0, 8e6)
        feasible = schedule.find_offsets(4e6, after=1.0, limit=4)
        assert feasible
        assert feasible[0] == schedule.find_offset(4e6, after=1.0)


# ======================================================================
# CLI smoke
# ======================================================================


class TestPlacementCli:
    def test_placement_flag_parses_everywhere(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("demo", "chaos", "bench", "cluster"):
            args = parser.parse_args([command, "--placement", "load-spread"])
            assert args.placement == "load-spread"
        with pytest.raises(SystemExit):
            parser.parse_args(["demo", "--placement", "best-fit"])

    def test_demo_runs_with_deadline_greedy(self, capsys):
        from repro.cli import main

        code = main(
            [
                "demo",
                "--streams",
                "6",
                "--seconds",
                "12",
                "--files",
                "4",
                "--placement",
                "deadline-greedy",
            ]
        )
        assert code == 0
        assert "slots" in capsys.readouterr().out
