"""Every example must compile AND run headlessly from a bare checkout.

"Headlessly" is the part that catches real drift: the test suite runs
with ``PYTHONPATH=src`` in the environment, and ``subprocess.run``
inherits it — so an example with a broken import chain still passed a
naive execution test.  Here the variable is stripped from the child
environment, which is exactly what a user typing
``python examples/quickstart.py`` gets; the ``_bootstrap`` shim inside
each example has to do the path work itself.
"""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
ALL_EXAMPLES = [
    "quickstart.py",
    "failover_drill.py",
    "hot_movie_premiere.py",
    "multibitrate_schedule.py",
    "capacity_planning.py",
    "controller_failover.py",
    "mixed_bitrate_service.py",
    "schedule_gallery.py",
]

#: Output each example must produce — a marker from its final section,
#: so an example that half-runs and exits 0 still fails the smoke test.
EXPECTED_OUTPUT = {
    "quickstart.py": "Invariants hold",
    "capacity_planning.py": "central ctrl",
}


def _run_headless(script: str) -> subprocess.CompletedProcess:
    """Run one example the way a user would: no PYTHONPATH, plain python."""
    env = {
        key: value
        for key, value in os.environ.items()
        if key != "PYTHONPATH"
    }
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_compiles(script):
    py_compile.compile(os.path.join(EXAMPLES_DIR, script), doraise=True)


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs_headless(script):
    result = _run_headless(script)
    assert result.returncode == 0, (
        f"{script} failed without PYTHONPATH:\n{result.stderr}"
    )
    marker = EXPECTED_OUTPUT.get(script)
    if marker is not None:
        assert marker in result.stdout, (
            f"{script} ran but did not print {marker!r}"
        )
