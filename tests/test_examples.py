"""The examples must at least compile and the quickstart must run."""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
ALL_EXAMPLES = [
    "quickstart.py",
    "failover_drill.py",
    "hot_movie_premiere.py",
    "multibitrate_schedule.py",
    "capacity_planning.py",
    "controller_failover.py",
    "mixed_bitrate_service.py",
    "schedule_gallery.py",
]


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_compiles(script):
    py_compile.compile(os.path.join(EXAMPLES_DIR, script), doraise=True)


def test_quickstart_runs_clean():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Invariants hold" in result.stdout


def test_capacity_planning_runs_clean():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "capacity_planning.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "central ctrl" in result.stdout
