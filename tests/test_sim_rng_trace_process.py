"""Tests for RNG streams, tracing, and the Process base class."""

import pytest

from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer, format_trace


class TestRngRegistry:
    def test_same_name_same_stream(self, rngs):
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_different_streams(self, rngs):
        assert rngs.stream("a") is not rngs.stream("b")

    def test_deterministic_across_registries(self):
        first = RngRegistry(seed=5).stream("disk.0")
        second = RngRegistry(seed=5).stream("disk.0")
        assert [first.random() for _ in range(10)] == [
            second.random() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        first = RngRegistry(seed=1).stream("x")
        second = RngRegistry(seed=2).stream("x")
        assert first.random() != second.random()

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        reference = RngRegistry(seed=9)
        expected = [reference.stream("b").random() for _ in range(5)]

        registry = RngRegistry(seed=9)
        registry.stream("a").random()  # interleaved draw on another stream
        actual = [registry.stream("b").random() for _ in range(5)]
        assert actual == expected

    def test_fork_changes_streams(self):
        base = RngRegistry(seed=3)
        fork = base.fork("salt")
        assert base.stream("x").random() != fork.stream("x").random()


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(1.0, "cat", "msg")
        assert len(tracer.records) == 0

    def test_enabled_records(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(1.0, "cat", "msg", key="value")
        assert len(tracer.records) == 1
        assert tracer.records[0].fields["key"] == "value"

    def test_category_filter(self):
        tracer = Tracer()
        tracer.enable("keep")
        tracer.emit(1.0, "keep", "a")
        tracer.emit(1.0, "drop", "b")
        assert [record.category for record in tracer.records] == ["keep"]

    def test_select_and_matching(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(1.0, "insert", "x", slot=3)
        tracer.emit(2.0, "insert", "y", slot=4)
        tracer.emit(3.0, "other", "z")
        assert len(tracer.select("insert")) == 2
        assert len(tracer.matching("insert", slot=4)) == 1

    def test_capacity_bound(self):
        tracer = Tracer(capacity=10)
        tracer.enable()
        for index in range(100):
            tracer.emit(float(index), "cat", "m")
        assert len(tracer.records) == 10

    def test_format_trace(self):
        tracer = Tracer()
        tracer.enable()
        tracer.emit(1.5, "cat", "hello", a=1)
        text = format_trace(tracer.records)
        assert "hello" in text and "a=1" in text


class TestProcess:
    def test_after_schedules(self, sim):
        proc = Process(sim, "p")
        fired = []
        proc.after(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]

    def test_every_repeats(self, sim):
        proc = Process(sim, "p")
        fired = []
        proc.every(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert len(fired) == 5

    def test_every_rejects_nonpositive_period(self, sim):
        with pytest.raises(ValueError):
            Process(sim, "p").every(0.0, lambda: None)

    def test_cancel_timers_stops_periodic(self, sim):
        proc = Process(sim, "p")
        fired = []
        proc.every(1.0, lambda: fired.append(1))
        sim.call_at(2.5, proc.cancel_timers)
        sim.run(until=10.0)
        assert len(fired) == 2

    def test_every_with_jitter(self, sim, rngs):
        rng = rngs.stream("jitter")
        proc = Process(sim, "p")
        times = []
        proc.every(1.0, lambda: times.append(sim.now), jitter_fn=lambda: rng.random() * 0.1)
        sim.run(until=10.0)
        assert len(times) >= 8
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(1.0 <= gap <= 1.1 + 1e-9 for gap in gaps)

    def test_trace_through_process(self, sim):
        tracer = Tracer()
        tracer.enable()
        proc = Process(sim, "proc-x", tracer)
        proc.trace("cat", "did a thing", n=2)
        assert tracer.records[0].message.startswith("proc-x:")
