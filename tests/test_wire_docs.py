"""docs/WIRE.md stays complete as the wire protocol grows.

Mirrors tests/test_obs_docs.py: the documentation is part of the
contract.  Every registered payload type (tag, class name, numeric id)
must appear in the byte-level spec, along with every control verb and
binary value type code the codec actually speaks — a new payload or
verb without a spec row fails here before it ships.
"""

import pathlib
import re

from repro.live.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME_BYTES,
    SUPPORTED_CODECS,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    payload_registry,
    registered_payload_types,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WIRE_MD = REPO_ROOT / "docs" / "WIRE.md"

#: Control verbs the node/hub implementations exchange; each must be
#: documented (in backticks) in the control-frame table.
CONTROL_VERBS = (
    "hello",
    "codec_ack",
    "_start",
    "_metrics",
    "_stop",
    "_bye",
    "_error",
)

#: Binary value type codes from the spec table; each must appear as a
#: `0xNN` literal in the doc.
BINARY_VALUE_CODES = (0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08)


def doc_text() -> str:
    return WIRE_MD.read_text(encoding="utf-8")


class TestPayloadRegistryCoverage:
    def test_every_tag_documented(self):
        doc = doc_text()
        missing = {
            tag
            for tag in registered_payload_types()
            if f"`{tag}`" not in doc
        }
        assert not missing, (
            f"payload tags registered but missing from docs/WIRE.md: "
            f"{sorted(missing)}"
        )

    def test_every_class_name_documented(self):
        doc = doc_text()
        missing = {
            cls.__name__
            for cls in registered_payload_types().values()
            if f"`{cls.__name__}`" not in doc
        }
        assert not missing, (
            f"payload classes missing from docs/WIRE.md: {sorted(missing)}"
        )

    def test_numeric_ids_match_doc_table(self):
        # The registry table's "| id | `tag` |" rows must agree with the
        # live registry — ids are the binary wire contract.
        doc = doc_text()
        doc_rows = dict(
            (tag, int(numeric_id))
            for numeric_id, tag in re.findall(
                r"^\|\s*(\d+)\s*\|\s*`([a-z_]+)`", doc, flags=re.M
            )
        )
        expected = {tag: numeric_id for numeric_id, tag, _ in payload_registry()}
        assert doc_rows == expected, (
            "docs/WIRE.md registry table disagrees with payload_registry()"
        )

    def test_every_field_list_documented(self):
        # Field order is on the wire (positional binary encoding), so
        # the doc must spell out each class's fields verbatim.
        doc = doc_text()
        problems = []
        for _, tag, cls in payload_registry():
            import dataclasses

            fields = ", ".join(
                field.name for field in dataclasses.fields(cls)
            )
            if fields not in doc:
                problems.append(f"{tag}: expected field list {fields!r}")
        assert not problems, "\n".join(problems)


class TestProtocolConstantsDocumented:
    def test_control_verbs_documented(self):
        doc = doc_text()
        missing = [v for v in CONTROL_VERBS if f"`{v}`" not in doc]
        assert not missing, f"control verbs missing from docs/WIRE.md: {missing}"

    def test_binary_value_codes_documented(self):
        doc = doc_text()
        missing = [
            f"0x{code:02x}"
            for code in BINARY_VALUE_CODES
            if f"0x{code:02x}" not in doc.lower()
        ]
        assert not missing, f"value type codes missing: {missing}"

    def test_versions_magic_and_bound_documented(self):
        doc = doc_text()
        assert "0xB2" in doc
        assert str(WIRE_VERSION) == "1" and '"v": 1' in doc
        assert WIRE_VERSION_BINARY == 2
        assert "MAX_FRAME_BYTES" in doc and MAX_FRAME_BYTES == 1 << 20
        for codec in SUPPORTED_CODECS:
            assert codec in (CODEC_JSON, CODEC_BINARY)
            assert f"`{codec}`" in doc or codec in doc
