"""Coherent-hallucination invariants under randomized workloads (§4).

These tests make the paper's correctness argument executable.  The
distributed cubs never consult the :class:`GlobalSchedule`; they only
*report* commits to it.  If two cubs ever insert into the same slot,
the oracle raises :class:`SlotConflictError` and the test fails — so
simply surviving a hostile random schedule of starts and stops is the
assertion.
"""

import pytest

from repro import TigerSystem, small_config
from repro.sim.rng import RngRegistry


def churn(system, client, rng, rounds, max_active=None):
    """Randomly interleave starts, stops, and time passage."""
    active = []
    cap = max_active if max_active is not None else system.config.num_slots
    for _ in range(rounds):
        action = rng.random()
        if action < 0.5 and len(active) < cap + 4:
            active.append(client.start_stream(rng.randrange(len(system.catalog))))
        elif active:
            victim = active.pop(rng.randrange(len(active)))
            client.stop_stream(victim)
        system.run_for(rng.uniform(0.2, 2.5))
    return active


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_churn_preserves_invariants(seed):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=5, duration_s=60)
    client = system.add_client()
    rng = RngRegistry(seed).stream("churn")
    churn(system, client, rng, rounds=60)
    system.run_for(20.0)
    system.finalize_clients()
    system.assert_invariants()
    # No stream that completed its start was ever double-served:
    for monitor in client.all_monitors():
        assert monitor.blocks_received <= monitor.expected_total


@pytest.mark.parametrize("seed", [11, 12])
def test_churn_with_failure_preserves_invariants(seed):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=5, duration_s=120)
    client = system.add_client()
    rng = RngRegistry(seed).stream("churn")
    churn(system, client, rng, rounds=20)
    system.fail_cub(rng.randrange(system.config.num_cubs))
    churn(system, client, rng, rounds=20)
    system.run_for(25.0)
    system.finalize_clients()
    system.assert_invariants()


def test_views_agree_with_oracle_where_defined():
    """Union-of-views coherence: wherever a cub's view asserts a slot's
    occupant for an upcoming visit, the oracle agrees."""
    system = TigerSystem(small_config(), seed=42)
    system.add_standard_content(num_files=5, duration_s=120)
    client = system.add_client()
    for index in range(20):
        client.start_stream(file_id=index % 5)
    system.run_for(20.0)
    checked = 0
    for cub in system.cubs:
        for slot in cub.view.known_slots():
            state = cub.view.state_for_slot(slot)
            if state.due_time < system.sim.now:
                continue  # historical record, may be stale by design
            occupant = system.oracle.occupant(slot)
            assert occupant is not None, (
                f"cub {cub.cub_id} believes slot {slot} holds "
                f"{state.viewer_id} but the oracle says it is free"
            )
            assert occupant.viewer_id == state.viewer_id
            assert occupant.instance == state.instance
            checked += 1
    assert checked > 20  # the assertion actually exercised views


def test_schedule_load_equals_active_streams():
    system = TigerSystem(small_config(), seed=8)
    system.add_standard_content(num_files=4, duration_s=120)
    client = system.add_client()
    for index in range(10):
        client.start_stream(file_id=index % 4)
    system.run_for(15.0)
    assert system.oracle.num_occupied == 10
    active = sum(
        1
        for monitor in client.all_monitors()
        if monitor.startup_latency is not None and not monitor.finished
    )
    assert active == 10


def test_no_duplicate_block_delivery_under_double_forwarding():
    """Double-forwarding must not double-serve: each play seqno is
    delivered at most once."""
    system = TigerSystem(small_config(), seed=13)
    system.add_standard_content(num_files=4, duration_s=60)
    client = system.add_client()
    seen = []
    hook = lambda message, when: seen.append(
        (message.payload.instance, message.payload.play_seqno, message.payload.piece)
    ) if message.kind == "data" else None
    system.network.add_delivery_hook(hook)
    for index in range(8):
        client.start_stream(file_id=index % 4)
    system.run_for(30.0)
    assert len(seen) == len(set(seen)), "a block was transmitted twice"


def test_bounded_view_growth_is_independent_of_history():
    """Run twice as long; view sizes must not grow with history."""
    sizes = {}
    for duration in (30.0, 60.0):
        system = TigerSystem(small_config(), seed=77)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        for index in range(16):
            client.start_stream(file_id=index % 4)
        system.run_for(duration)
        sizes[duration] = max(cub.view.size() for cub in system.cubs)
    assert sizes[60.0] <= sizes[30.0] * 1.5 + 50
