"""LiveRuntime: the wall-clock implementation of the Runtime contract."""

import asyncio

import pytest

from repro.live.runtime import LiveRuntime, LiveTimer
from repro.live.transport import NullTransport
from repro.runtime import Runtime, TimerHandle, Transport
from repro.sim.core import Simulator


def _run(coro):
    return asyncio.run(coro)


def test_backends_satisfy_the_runtime_protocol():
    assert isinstance(Simulator(), Runtime)
    assert isinstance(LiveRuntime(epoch=0.0), Runtime)
    assert isinstance(NullTransport(), Transport)


def test_now_is_measured_from_the_epoch():
    async def scenario():
        runtime = LiveRuntime()
        assert -0.1 < runtime.now < 0.1
        future = LiveRuntime(epoch=runtime.epoch + 100.0)
        assert future.now < -99.0  # pre-epoch clocks read negative

    _run(scenario())


def test_call_after_fires_in_order_with_arguments():
    async def scenario():
        runtime = LiveRuntime()
        fired = []
        runtime.call_after(0.02, fired.append, "second")
        runtime.call_after(0.0, fired.append, "first")
        await asyncio.sleep(0.08)
        assert fired == ["first", "second"]
        assert runtime.events_dispatched == 2

    _run(scenario())


def test_call_at_in_the_past_clamps_to_immediately():
    async def scenario():
        runtime = LiveRuntime()
        fired = []
        timer = runtime.call_at(runtime.now - 5.0, fired.append, "late")
        assert isinstance(timer, LiveTimer)
        assert isinstance(timer, TimerHandle)
        await asyncio.sleep(0.03)
        assert fired == ["late"]

    _run(scenario())


def test_negative_delay_is_still_a_bug():
    async def scenario():
        runtime = LiveRuntime()
        with pytest.raises(ValueError, match="negative delay"):
            runtime.call_after(-0.5, lambda: None)

    _run(scenario())


def test_cancelled_timer_never_fires():
    async def scenario():
        runtime = LiveRuntime()
        fired = []
        timer = runtime.call_after(0.01, fired.append, "no")
        assert timer.active
        timer.cancel()
        assert not timer.active
        await asyncio.sleep(0.04)
        assert fired == []
        assert runtime.events_dispatched == 0

    _run(scenario())


def test_callback_exceptions_are_recorded_not_fatal():
    async def scenario():
        runtime = LiveRuntime()
        fired = []

        def explode():
            raise RuntimeError("boom")

        runtime.call_after(0.0, explode)
        runtime.call_after(0.02, fired.append, "survived")
        await asyncio.sleep(0.08)
        assert fired == ["survived"]
        assert runtime.callback_errors == 1
        (when, name, trace), = runtime.errors
        assert "explode" in name
        assert "boom" in trace

    _run(scenario())


def test_cancel_all_silences_everything():
    async def scenario():
        runtime = LiveRuntime()
        fired = []
        for _ in range(10):
            runtime.call_after(0.01, fired.append, "x")
        runtime.cancel_all()
        await asyncio.sleep(0.04)
        assert fired == []

    _run(scenario())
