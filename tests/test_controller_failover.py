"""Tests for controller fault tolerance (the paper's stated future work).

§2.3: the distributed schedule already removed the controller's main
job; "making its remaining functions fault tolerant is a simple
exercise".  These tests exercise that exercise: replication, takeover,
client retry, and the property the paper promises — running streams
never depend on the controller at all.
"""


from repro import TigerSystem, small_config
from repro.core.failover import BACKUP_CONTROLLER_ADDRESS


def build(seed=91):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=5, duration_s=240)
    system.enable_controller_backup(takeover_timeout=3.0)
    return system


class TestReplication:
    def test_backup_registered(self):
        system = build()
        assert system.backup_controller.address == BACKUP_CONTROLLER_ADDRESS
        assert not system.backup_controller.active

    def test_play_records_replicate(self):
        system = build()
        client = system.add_client()
        instance = client.start_stream(file_id=0)
        system.run_for(8.0)
        replica = system.backup_controller.plays.get(instance)
        assert replica is not None
        assert replica.slot is not None  # commit reported to both

    def test_stop_replicates(self):
        system = build()
        client = system.add_client()
        instance = client.start_stream(file_id=0)
        system.run_for(8.0)
        client.stop_stream(instance)
        system.run_for(3.0)
        replica = system.backup_controller.plays[instance]
        assert replica.stop_requested

    def test_backup_stays_passive_while_primary_alive(self):
        system = build()
        system.run_for(20.0)
        assert not system.backup_controller.active
        assert system.backup_controller.took_over_at is None


class TestTakeover:
    def test_running_streams_unaffected_by_controller_death(self):
        """The headline property: the schedule is distributed, so data
        keeps flowing with NO controller at all."""
        system = TigerSystem(small_config(), seed=92)
        system.add_standard_content(num_files=5, duration_s=240)
        client = system.add_client()
        for index in range(10):
            client.start_stream(file_id=index % 5)
        system.run_for(10.0)
        system.fail_controller()
        received_before = system.total_client_received()
        system.run_for(20.0)
        system.finalize_clients()
        assert system.total_client_received() > received_before + 150
        assert system.total_client_missed() == 0

    def test_backup_declares_takeover(self):
        system = build()
        system.run_for(5.0)
        system.fail_controller()
        system.run_for(6.0)
        assert system.backup_controller.active
        assert system.backup_controller.took_over_at is not None

    def test_new_starts_served_by_backup_after_takeover(self):
        system = build()
        client = system.add_client()
        system.run_for(5.0)
        system.fail_controller()
        system.run_for(6.0)  # takeover
        instance = client.start_stream(file_id=1)
        system.run_for(15.0)
        monitor = client.streams[instance]
        assert monitor.startup_latency is not None
        assert monitor.blocks_received > 5

    def test_start_issued_during_outage_retries_to_backup(self):
        """A request sent into the dead primary is retried and served."""
        system = build()
        client = system.add_client()
        system.run_for(5.0)
        system.fail_controller()
        # Request immediately — before the backup has even taken over.
        instance = client.start_stream(file_id=2)
        system.run_for(20.0)
        monitor = client.streams[instance]
        assert monitor.blocks_received > 3

    def test_stop_works_after_takeover(self):
        system = build()
        client = system.add_client()
        instance = client.start_stream(file_id=0)
        system.run_for(8.0)
        system.fail_controller()
        system.run_for(6.0)
        client.stop_stream(instance)
        system.run_for(8.0)
        assert system.oracle.num_occupied == 0

    def test_retry_does_not_double_schedule(self):
        """The client's retry may race the primary's death: the cubs'
        duplicate suppression must keep one play instance = one slot."""
        system = build()
        client = system.add_client()
        system.run_for(5.0)
        # Fail the primary just after it routed the request: the ack is
        # lost, the client retries to the backup, and both routings hit
        # the same cubs.
        instance = client.start_stream(file_id=0)
        system.sim.call_after(0.0005, system.fail_controller)
        system.run_for(25.0)
        assert system.oracle.num_occupied == 1
        assert client.streams[instance].blocks_received > 5
        system.assert_invariants()


class TestSplitBrain:
    def test_resurrected_primary_demotes_itself(self):
        """Regression: after a takeover, a rebooted primary must hear
        the backup's active beacons and stand down — never two active
        controllers."""
        system = build()
        system.run_for(5.0)
        system.fail_controller()
        system.run_for(6.0)  # takeover_timeout=3.0: backup goes active
        assert system.backup_controller.active
        system.recover_controller()
        assert system.controller.active  # reboots believing it leads
        system.run_for(2.0)  # one beacon interval is enough
        assert not system.controller.active
        assert system.backup_controller.active

    def test_no_double_admission_after_failback(self):
        system = build()
        system.run_for(5.0)
        system.fail_controller()
        system.run_for(6.0)
        system.recover_controller()
        system.run_for(2.0)
        client = system.add_client()
        instance = client.start_stream(file_id=1)
        system.run_for(10.0)
        assert system.oracle.num_occupied == 1
        assert client.streams[instance].blocks_received > 3
        system.assert_invariants()
