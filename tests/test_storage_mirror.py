"""Tests for declustered mirroring (paper §2.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.layout import StripeLayout
from repro.storage.mirror import MirrorScheme


@pytest.fixture
def scheme():
    return MirrorScheme(StripeLayout(14, 4), decluster=4)


class TestPlacement:
    def test_pieces_on_following_disks(self, scheme):
        """Secondaries live on the disks immediately after the primary."""
        assert scheme.secondary_disks(10) == (11, 12, 13, 14)

    def test_wraparound(self, scheme):
        assert scheme.secondary_disks(54) == (55, 0, 1, 2)

    def test_piece_location_matches_secondary_disks(self, scheme):
        for piece in range(4):
            assert scheme.piece_location(10, piece) == scheme.secondary_disks(10)[piece]

    def test_piece_out_of_range_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.piece_location(0, 4)

    def test_primaries_mirrored_on_inverse(self, scheme):
        """pieces_hosted_by is the inverse of secondary placement."""
        for primary, piece in scheme.primaries_mirrored_on(20):
            assert scheme.piece_location(primary, piece) == 20

    def test_covering_cubs_follow_failed_cub(self, scheme):
        assert scheme.covering_cubs(3) == (4, 5, 6, 7)

    def test_covering_cubs_wrap(self, scheme):
        assert scheme.covering_cubs(12) == (13, 0, 1, 2)

    def test_piece_size_ceil(self, scheme):
        assert scheme.piece_size(250_000) == 62_500
        assert scheme.piece_size(250_001) == 62_501

    def test_invalid_decluster_rejected(self):
        layout = StripeLayout(4, 1)
        with pytest.raises(ValueError):
            MirrorScheme(layout, 0)
        with pytest.raises(ValueError):
            MirrorScheme(layout, 4)

    @given(st.integers(2, 16), st.integers(1, 4), st.integers(1, 6))
    def test_every_piece_on_distinct_disk(self, cubs, disks_per, decluster):
        layout = StripeLayout(cubs, disks_per)
        if decluster >= layout.num_disks:
            return
        scheme = MirrorScheme(layout, decluster)
        for primary in range(layout.num_disks):
            pieces = scheme.secondary_disks(primary)
            assert len(set(pieces)) == len(pieces)
            assert primary not in pieces


class TestFaultToleranceTradeoff:
    """The §2.3 numbers: bandwidth reserve vs vulnerability."""

    def test_decluster_4_reserves_one_fifth(self):
        scheme = MirrorScheme(StripeLayout(14, 4), 4)
        assert scheme.bandwidth_reserved_fraction() == pytest.approx(1 / 5)

    def test_decluster_2_reserves_one_third(self):
        scheme = MirrorScheme(StripeLayout(14, 4), 2)
        assert scheme.bandwidth_reserved_fraction() == pytest.approx(1 / 3)

    def test_decluster_4_vulnerable_on_8_machines(self):
        """"a second failure on any of 8 machines would result in the
        loss of data" — 4 ahead and 4 behind."""
        scheme = MirrorScheme(StripeLayout(14, 4), 4)
        assert len(scheme.second_failure_vulnerable_cubs(5)) == 8

    def test_decluster_2_survives_distant_failures(self):
        """decluster 2 "can survive failures more than two cubs away"."""
        scheme = MirrorScheme(StripeLayout(14, 4), 2)
        vulnerable = scheme.second_failure_vulnerable_cubs(5)
        assert vulnerable == (3, 4, 6, 7)

    def test_single_failure_keeps_data(self, scheme):
        layout = StripeLayout(14, 4)
        failed = layout.disks_of_cub(3)
        assert scheme.data_available(failed)

    def test_adjacent_cub_failures_lose_data(self, scheme):
        layout = StripeLayout(14, 4)
        failed = layout.disks_of_cub(3) + layout.disks_of_cub(4)
        assert not scheme.data_available(failed)

    def test_distant_cub_failures_keep_data(self, scheme):
        layout = StripeLayout(14, 4)
        failed = layout.disks_of_cub(3) + layout.disks_of_cub(10)
        assert scheme.data_available(failed)

    def test_lost_block_fraction(self):
        layout = StripeLayout(6, 1)
        scheme = MirrorScheme(layout, 2)
        # disks 0 and 1 failed: disk 0's pieces live on 1,2 -> lost.
        # disk 1's pieces live on 2,3 -> readable.
        assert scheme.lost_block_fraction([0, 1]) == pytest.approx(1 / 6)
        assert scheme.lost_block_fraction([]) == 0.0

    def test_survivable_pairs_grow_with_smaller_decluster(self):
        layout = StripeLayout(14, 4)
        wide = MirrorScheme(layout, 4).survivable_failure_pairs()
        narrow = MirrorScheme(layout, 2).survivable_failure_pairs()
        assert narrow > wide

    @given(st.integers(5, 16), st.integers(1, 4))
    def test_vulnerable_set_size_is_2d_when_ring_large_enough(self, cubs, decluster):
        layout = StripeLayout(cubs, 2)
        if decluster >= cubs or 2 * decluster >= cubs:
            return
        scheme = MirrorScheme(layout, decluster)
        assert len(scheme.second_failure_vulnerable_cubs(0)) == 2 * decluster

    @given(st.integers(6, 14), st.integers(1, 3), st.integers(0, 13), st.integers(0, 13))
    def test_data_available_symmetric_in_pair(self, cubs, decluster, a, b):
        """Joint availability of a cub pair can't depend on order."""
        layout = StripeLayout(cubs, 2)
        if decluster >= cubs:
            return
        scheme = MirrorScheme(layout, decluster)
        first, second = a % cubs, b % cubs
        fwd = scheme.data_available(
            layout.disks_of_cub(first) + layout.disks_of_cub(second)
        )
        rev = scheme.data_available(
            layout.disks_of_cub(second) + layout.disks_of_cub(first)
        )
        assert fwd == rev
