"""Randomized churn including VCR operations and failures.

Extends the coherence fuzzing with pause/resume (which exercises
mid-file starts and rapid slot turnover) and content verification
(cross-wired blocks would surface as ``blocks_corrupt``).
"""

import pytest

from repro import TigerSystem, small_config
from repro.sim.rng import RngRegistry


@pytest.mark.parametrize("seed", [101, 102, 103])
def test_vcr_churn_preserves_invariants(seed):
    system = TigerSystem(small_config(), seed=seed)
    system.add_standard_content(num_files=5, duration_s=120)
    client = system.add_client()
    rng = RngRegistry(seed).stream("vcr-churn")

    active = []
    paused = []
    for _ in range(50):
        roll = rng.random()
        if roll < 0.4 and len(active) < system.config.num_slots:
            active.append(client.start_stream(rng.randrange(5)))
        elif roll < 0.6 and active:
            victim = active.pop(rng.randrange(len(active)))
            if client.pause_stream(victim) is not None:
                paused.append(victim)
        elif roll < 0.8 and paused:
            resumed = client.resume_stream(paused.pop(rng.randrange(len(paused))))
            if resumed is not None:
                active.append(resumed)
        elif active:
            client.stop_stream(active.pop(rng.randrange(len(active))))
        system.run_for(rng.uniform(0.3, 2.0))

    system.run_for(15.0)
    system.finalize_clients()
    system.assert_invariants()
    assert system.total_client_corrupt() == 0


def test_vcr_churn_with_cub_failure():
    system = TigerSystem(small_config(), seed=111)
    system.add_standard_content(num_files=5, duration_s=180)
    client = system.add_client()
    rng = RngRegistry(111).stream("vcr-churn")

    active = [client.start_stream(index % 5) for index in range(10)]
    system.run_for(12.0)
    system.fail_cub(2)

    paused = []
    for _ in range(25):
        roll = rng.random()
        if roll < 0.4 and active:
            victim = active.pop(rng.randrange(len(active)))
            if client.pause_stream(victim) is not None:
                paused.append(victim)
        elif roll < 0.8 and paused:
            resumed = client.resume_stream(paused.pop())
            if resumed is not None:
                active.append(resumed)
        system.run_for(rng.uniform(0.5, 2.0))

    system.run_for(20.0)
    system.finalize_clients()
    system.assert_invariants()
    # Mirror-reconstructed content must still verify.
    assert system.total_client_corrupt() == 0


def test_resume_positions_never_rewind():
    """Resumed streams continue strictly forward in the file."""
    system = TigerSystem(small_config(), seed=121)
    system.add_standard_content(num_files=3, duration_s=120)
    client = system.add_client()
    instance = client.start_stream(file_id=0)
    positions = []
    for _ in range(4):
        system.run_for(8.0)
        resume_block = client.pause_stream(instance)
        positions.append(resume_block)
        system.run_for(2.0)
        instance = client.resume_stream(instance)
    assert positions == sorted(positions)
    assert positions[-1] > positions[0]
