"""Tests for the fault injectors (repro.faults.injectors)."""

import pytest

from repro import TigerSystem, small_config
from repro.faults.injectors import (
    MessageFaultInjector,
    install_plan,
)
from repro.faults.plan import FaultPlan
from repro.sim.rng import RngRegistry


class FakeNetwork:
    def __init__(self):
        self.fault_injector = None


class FakeSystem:
    def __init__(self, seed=0):
        self.network = FakeNetwork()
        self.rngs = RngRegistry(seed=seed)


class FakeMessage:
    def __init__(self, kind="control"):
        self.kind = kind


def make_injector(plan, seed=0):
    system = FakeSystem(seed=seed)
    injector = MessageFaultInjector(system, plan)
    injector.install()
    return injector


class TestMessageFaults:
    def test_drop_inside_window_only(self):
        plan = FaultPlan().drop_messages(1.0, start=10.0, duration=5.0)
        injector = make_injector(plan)
        # Before the window: untouched.
        assert injector.perturb(FakeMessage(), now=9.0, arrival=9.1) == [9.1]
        # Inside: rate 1.0 means certain loss.
        assert injector.perturb(FakeMessage(), now=12.0, arrival=12.1) == []
        # The window is half-open: at end the fault is over.
        assert injector.perturb(FakeMessage(), now=15.0, arrival=15.1) == [15.1]
        assert injector.messages_dropped == 1
        assert injector.messages_seen == 3

    def test_drop_respects_message_kind(self):
        plan = FaultPlan().drop_messages(
            1.0, start=0.0, duration=10.0, kind="data"
        )
        injector = make_injector(plan)
        assert injector.perturb(FakeMessage("control"), 1.0, 1.1) == [1.1]
        assert injector.perturb(FakeMessage("data"), 1.0, 1.1) == []

    def test_delay_adds_latency_within_jitter_bound(self):
        plan = FaultPlan().delay_messages(
            0.01, start=0.0, duration=10.0, jitter=0.005
        )
        injector = make_injector(plan)
        [when] = injector.perturb(FakeMessage(), now=1.0, arrival=1.1)
        assert 1.11 <= when <= 1.115 + 1e-12
        assert injector.messages_delayed == 1

    def test_duplicate_appends_trailing_copy(self):
        plan = FaultPlan().duplicate_messages(1.0, start=0.0, duration=10.0)
        injector = make_injector(plan)
        times = injector.perturb(FakeMessage(), now=1.0, arrival=1.1)
        assert len(times) == 2
        assert times[0] == pytest.approx(1.1)
        assert times[0] <= times[1] <= times[0] + 0.005
        assert injector.messages_duplicated == 1

    def test_reorder_pushes_arrival_later(self):
        plan = FaultPlan().reorder_messages(
            1.0, shift=0.2, start=0.0, duration=10.0
        )
        injector = make_injector(plan)
        [when] = injector.perturb(FakeMessage(), now=1.0, arrival=1.1)
        assert 1.1 <= when <= 1.3
        assert injector.messages_reordered == 1

    def test_double_install_rejected(self):
        system = FakeSystem()
        plan = FaultPlan().drop_messages(0.5, start=0.0, duration=1.0)
        MessageFaultInjector(system, plan).install()
        with pytest.raises(RuntimeError):
            MessageFaultInjector(system, plan).install()

    def test_same_seed_same_draws(self):
        plan = FaultPlan().drop_messages(0.5, start=0.0, duration=100.0)
        outcomes = []
        for _ in range(2):
            injector = make_injector(plan, seed=42)
            outcomes.append(
                [
                    len(injector.perturb(FakeMessage(), t * 1.0, t + 0.1))
                    for t in range(50)
                ]
            )
        assert outcomes[0] == outcomes[1]


class TestSystemInjectors:
    def build(self):
        system = TigerSystem(small_config(), seed=11)
        system.add_standard_content(num_files=3, duration_s=60)
        return system

    def test_disk_slow_window(self):
        system = self.build()
        plan = FaultPlan().slow_disk(2, factor=3.0, start=1.0, duration=2.0)
        install_plan(plan, system)
        disk = system.cubs[system.layout.cub_of_disk(2)].disks[2]
        system.run_for(1.5)
        assert disk.slow_factor == pytest.approx(3.0)
        system.run_for(2.0)
        assert disk.slow_factor == pytest.approx(1.0)

    def test_disk_fail_and_recover(self):
        system = self.build()
        plan = FaultPlan().fail_disk(1, at=1.0, recover_after=2.0)
        install_plan(plan, system)
        disk = system.cubs[system.layout.cub_of_disk(1)].disks[1]
        system.run_for(1.5)
        assert disk.failed
        system.run_for(2.0)
        assert not disk.failed

    def test_cub_crash_and_restart(self):
        system = self.build()
        plan = FaultPlan().crash_cub(1, at=1.0, restart_after=2.0)
        install_plan(plan, system)
        system.run_for(1.5)
        assert system.cubs[1].failed
        system.run_for(2.0)
        assert not system.cubs[1].failed

    def test_controller_kill_and_failback(self):
        system = self.build()
        plan = FaultPlan().kill_controller(at=1.0, recover_after=2.0)
        install_plan(plan, system)
        system.run_for(1.5)
        assert system.controller.failed
        system.run_for(2.0)
        assert not system.controller.failed

    def test_no_message_stage_without_message_faults(self):
        system = self.build()
        plan = FaultPlan().crash_cub(1, at=1.0)
        installed = install_plan(plan, system)
        assert installed.message_injector is None
        assert system.network.fault_injector is None
        assert installed.message_stats() == {
            "seen": 0, "dropped": 0, "delayed": 0,
            "duplicated": 0, "reordered": 0,
        }

    def test_monitor_notified_of_every_spec(self):
        system = self.build()
        plan = (
            FaultPlan()
            .drop_messages(0.1, start=0.0, duration=5.0)
            .crash_cub(1, at=1.0, restart_after=2.0)
        )

        class Recorder:
            def __init__(self):
                self.specs = []

            def note_fault(self, spec):
                self.specs.append(spec)

        recorder = Recorder()
        install_plan(plan, system, recorder)
        assert recorder.specs == plan.events
