"""Tests for wire payloads and the EXPERIMENTS.md report generator."""


import pytest

from repro.analysis.report import (
    EXPERIMENT_ORDER,
    PAPER_CLAIMS,
    load_sections,
    render,
)
from repro.core.protocol import (
    BlockData,
    CancelStart,
    ClientStart,
    ClientStop,
    DescheduleForward,
    Heartbeat,
    PlayEnded,
    StartCommitted,
    StartRequest,
    ViewerStateBatch,
)
from repro.core.viewerstate import DescheduleRequest, ViewerState


def make_state(seqno=0):
    return ViewerState("v", 1, 2, 0, seqno, 3, 10.0, seqno)


class TestPayloads:
    def test_batch_len_counts_both_kinds(self):
        from repro.core.viewerstate import mirror_states_for

        states = (make_state(0), make_state(1))
        mirrors = mirror_states_for(make_state(2), 2, 8, 1.0)
        batch = ViewerStateBatch(states, mirrors)
        assert len(batch) == 4

    def test_empty_batch(self):
        assert len(ViewerStateBatch()) == 0

    def test_payloads_are_frozen(self):
        request = StartRequest("v", 1, 0, 0, 3, 0.0)
        with pytest.raises(AttributeError):
            request.viewer_id = "w"
        beat = Heartbeat(3)
        with pytest.raises(AttributeError):
            beat.cub_id = 4

    def test_block_data_defaults(self):
        data = BlockData("v", 1, 0, 5, 5)
        assert data.piece is None
        assert data.total_pieces == 1
        assert data.final is False

    def test_deschedule_forward_wraps_request(self):
        request = DescheduleRequest("v", 1, 2, 0.0)
        assert DescheduleForward(request).request is request

    def test_misc_payload_fields(self):
        assert StartCommitted("v", 1, 9, 3.0).slot == 9
        assert PlayEnded("v", 1, 9).slot == 9
        assert CancelStart("v", 1).instance == 1
        assert ClientStart("v", 1, 0).first_block == 0
        assert ClientStop("v", 1).viewer_id == "v"


class TestReport:
    def test_every_ordered_experiment_has_a_claim(self):
        for name in EXPERIMENT_ORDER:
            assert name in PAPER_CLAIMS

    def test_render_without_results(self, tmp_path):
        sections = load_sections(str(tmp_path))
        document = render(sections)
        assert "not yet run" in document
        for name in EXPERIMENT_ORDER:
            title, _ = PAPER_CLAIMS[name]
            assert title in document

    def test_render_with_results(self, tmp_path):
        target = tmp_path / "fig8_unfailed_loads.txt"
        target.write_text("streams 30 cpu 0.03\n")
        document = render(load_sections(str(tmp_path)))
        assert "streams 30 cpu 0.03" in document
        assert "```text" in document

    def test_main_writes_output(self, tmp_path):
        from repro.analysis.report import main

        output = tmp_path / "EXP.md"
        code = main(["--results", str(tmp_path), "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "# EXPERIMENTS" in output.read_text()
