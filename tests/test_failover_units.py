"""Unit-level tests for the backup controller's replica machinery."""

import pytest

from repro import TigerSystem, small_config
from repro.core.protocol import ReplicaUpdate


def build_backup():
    system = TigerSystem(small_config(), seed=93)
    system.add_standard_content(num_files=2, duration_s=60)
    backup = system.enable_controller_backup(takeover_timeout=3.0)
    return system, backup


class TestReplicaUpdates:
    def test_start_creates_record(self):
        system, backup = build_backup()
        backup.apply_replica_update(
            ReplicaUpdate("start", "client:0#5", 5, file_id=1, first_block=0)
        )
        assert backup.plays[5].file_id == 1

    def test_start_is_idempotent(self):
        system, backup = build_backup()
        update = ReplicaUpdate("start", "client:0#5", 5, file_id=1)
        backup.apply_replica_update(update)
        backup.apply_replica_update(update)
        assert len(backup.plays) == 1

    def test_committed_sets_slot(self):
        system, backup = build_backup()
        backup.apply_replica_update(ReplicaUpdate("start", "v", 5, file_id=0))
        backup.apply_replica_update(ReplicaUpdate("committed", "v", 5, slot=7))
        assert backup.plays[5].slot == 7

    def test_updates_for_unknown_instance_ignored(self):
        system, backup = build_backup()
        backup.apply_replica_update(ReplicaUpdate("committed", "v", 99, slot=7))
        assert 99 not in backup.plays

    def test_stopped_and_ended(self):
        system, backup = build_backup()
        backup.apply_replica_update(ReplicaUpdate("start", "v", 5, file_id=0))
        backup.apply_replica_update(ReplicaUpdate("stopped", "v", 5))
        assert backup.plays[5].stop_requested
        backup.apply_replica_update(ReplicaUpdate("ended", "v", 5))
        assert backup.plays[5].ended

    def test_unknown_kind_raises(self):
        system, backup = build_backup()
        backup.apply_replica_update(ReplicaUpdate("start", "v", 5, file_id=0))
        with pytest.raises(ValueError):
            backup.apply_replica_update(ReplicaUpdate("exploded", "v", 5))


class TestTakeoverPolicy:
    def test_heartbeats_defer_takeover(self):
        system, backup = build_backup()
        system.run_for(20.0)  # primary alive and beaconing
        assert not backup.active

    def test_backup_does_not_yield_leadership_back(self):
        """Once active, a resurrected primary does not demote the
        backup (simplest safe policy — no dueling controllers)."""
        system, backup = build_backup()
        system.run_for(5.0)
        system.fail_controller()
        system.run_for(6.0)
        assert backup.active
        system.controller.recover()
        system.run_for(10.0)
        assert backup.active

    def test_backup_is_inert_for_client_traffic_while_passive(self):
        system, backup = build_backup()
        client = system.add_client()
        # Force a start directly at the passive backup.
        from repro.core.protocol import ClientStart
        from repro.net.message import REQUEST_BYTES, Message

        system.network.send(
            Message(
                client.address,
                backup.address,
                ClientStart(f"{client.address}#777", 777, 0),
                REQUEST_BYTES,
            )
        )
        system.run_for(5.0)
        assert backup.starts_routed.count == 0
        assert system.oracle.num_occupied == 0
