"""Cluster driver: scenario algebra, snapshot merging, and one real run.

The integration test at the bottom boots an actual 3-cub localhost
cluster (5 OS processes plus the driver) for a few wall-clock seconds,
kills a cub mid-run, and asserts the merged metrics show mirror
takeover and zero invariant violations — the same contract the CI
live-smoke job enforces through the CLI.
"""

import asyncio

import pytest

from repro.config import small_config
from repro.faults.live import LiveFaultError, LiveFaultInjector, kill_cub_plan
from repro.faults.plan import FaultPlan
from repro.live.cluster import (
    SEND_HIGH_WATERMARK,
    SEND_QUEUE_HARD_CAP,
    ClusterReport,
    ClusterScenario,
    NodeConnection,
    compare_counters,
    relative_drift,
    run_cluster,
    run_scenario_in_sim,
)
from repro.live.node import config_from_dict, config_to_dict
from repro.obs.registry import merge_snapshots, snapshot_total


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def test_scenario_validation():
    with pytest.raises(ValueError, match="at least 3 cubs"):
        ClusterScenario(cubs=2)
    with pytest.raises(ValueError, match="too short"):
        ClusterScenario(duration=0.5)
    with pytest.raises(ValueError, match="out of range"):
        ClusterScenario(cubs=4, kill_cub=4)
    with pytest.raises(ValueError, match="codec"):
        ClusterScenario(codec="gzip")
    with pytest.raises(ValueError, match="arrival"):
        ClusterScenario(arrivals="sawtooth")
    with pytest.raises(ValueError, match="hubs"):
        ClusterScenario(cubs=4, hubs=0)
    with pytest.raises(ValueError, match="hubs"):
        ClusterScenario(cubs=4, hubs=5)


def test_scenario_namespaces_are_disjoint():
    scenario = ClusterScenario(cubs=4)
    spaces = [
        scenario.namespace_of(address)
        for address in scenario.node_addresses()
    ] + [scenario.driver_namespace]
    assert len(spaces) == len(set(spaces))
    assert 0 not in spaces  # namespace 0 flags a forgotten reset


def test_scenario_plans_are_deterministic():
    scenario = ClusterScenario(cubs=4, streams=3)
    assert scenario.stream_plan() == scenario.stream_plan()
    assert scenario.stream_plan()[1] == (1, 1, 1.25)
    assert scenario.stop_plan() == [(0, 12.0)]
    assert scenario.kill_time() is None
    assert ClusterScenario(cubs=4, kill_cub=1).kill_time() == 8.0


def test_churn_plan_is_deterministic_and_leaves_client_zero_alone():
    scenario = ClusterScenario(cubs=4, streams=8, churn=6, seed=5)
    plan = scenario.churn_plan()
    assert plan == ClusterScenario(cubs=4, streams=8, churn=6, seed=5).churn_plan()
    assert plan  # six churn events over seven eligible clients
    assert plan == sorted(plan, key=lambda event: (event[0], event[2]))
    window_start = scenario.first_start + 2.0
    window_end = max(window_start + 1.0, scenario.duration * 0.85)
    for at, op, client_index in plan:
        assert op in ("pause", "resume", "stop")
        assert client_index != 0  # stop_plan owns client 0
        assert 0 < client_index < scenario.streams
        assert window_start <= at <= window_end
    # Every pause has a matching resume for the same client.
    paused = [c for _, op, c in plan if op == "pause"]
    resumed = [c for _, op, c in plan if op == "resume"]
    assert sorted(paused) == sorted(resumed)
    # No churn requested -> empty plan (the legacy scenarios are
    # byte-identical to before the field existed).
    assert ClusterScenario(cubs=4, streams=8).churn_plan() == []
    with pytest.raises(ValueError, match="churn"):
        ClusterScenario(cubs=4, churn=-1)


def test_config_round_trips_through_node_spec():
    config = small_config(deadman_timeout=3.0)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.num_cubs == config.num_cubs
    assert rebuilt.deadman_timeout == 3.0
    assert rebuilt.num_slots == config.num_slots
    assert rebuilt.block_service_time == config.block_service_time
    with pytest.raises(ValueError, match="unknown config fields"):
        config_from_dict({"num_cubs": 4, "warp_drive": True})


# ----------------------------------------------------------------------
# Fault plumbing
# ----------------------------------------------------------------------
def test_live_injector_rejects_unsupported_fault_kinds():
    plan = FaultPlan().drop_messages(rate=0.1, start=0.0, duration=5.0)
    with pytest.raises(LiveFaultError, match="net.drop"):
        LiveFaultInjector(cluster=None, plan=plan)
    restart = FaultPlan().crash_cub(1, at=2.0, restart_after=3.0)
    with pytest.raises(LiveFaultError, match="cub.restart"):
        LiveFaultInjector(cluster=None, plan=restart)


def test_kill_cub_plan_is_one_supported_crash():
    plan = kill_cub_plan(2, at=4.5)
    (spec,) = plan.events
    assert spec.kind == "cub.crash"
    assert spec.target == "cub:2"
    assert spec.start == 4.5


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------
def _family(kind, *rows):
    return {
        "kind": kind,
        "help": "",
        "unit": "",
        "series": [{"labels": labels, "value": value} for labels, value in rows],
    }


def test_merge_snapshots_sums_counters_and_keeps_last_gauge():
    node_a = {
        "cub.blocks_sent": _family("counter", ({"cub": "cub:0"}, 10)),
        "live.clock_skew": _family("gauge", ({"node": "cub:0"}, 0.5)),
    }
    node_b = {
        "cub.blocks_sent": _family(
            "counter", ({"cub": "cub:0"}, 5), ({"cub": "cub:1"}, 7)
        ),
        "live.clock_skew": _family("gauge", ({"node": "cub:0"}, 0.1)),
    }
    merged = merge_snapshots([node_a, node_b])
    assert snapshot_total(merged, "cub.blocks_sent") == 22
    assert snapshot_total(merged, "cub.blocks_sent", cub="cub:1") == 7
    (skew,) = [
        row["value"] for row in merged["live.clock_skew"]["series"]
    ]
    assert skew == 0.1  # gauges: last snapshot wins


def test_merge_counts_series_missing_from_some_snapshots():
    # A node that never registered a family (or died before exporting
    # it) must read as zero, not poison the sum — and the merge reports
    # how many (family, series) contributions were absent.
    node_a = {
        "cub.blocks_sent": _family("counter", ({"cub": "cub:0"}, 10)),
        "cub.mirror_covers": _family("counter", ({"cub": "cub:0"}, 2)),
    }
    node_b = {
        "cub.blocks_sent": _family("counter", ({"cub": "cub:1"}, 5)),
    }
    merged = merge_snapshots([node_a, node_b])
    assert snapshot_total(merged, "cub.blocks_sent") == 15
    assert snapshot_total(merged, "cub.mirror_covers") == 2
    # Both snapshots export blocks_sent but each lacks the other's
    # series key: 2 holes.  mirror_covers counts none — node_b never
    # exports the family, and absent families are not holes.
    assert snapshot_total(merged, "merge.missing_series") == 2


def test_merge_missing_series_is_zero_for_identical_shapes():
    shape = {
        "cub.blocks_sent": _family("counter", ({"cub": "cub:0"}, 1)),
    }
    merged = merge_snapshots([shape, shape])
    assert snapshot_total(merged, "merge.missing_series") == 0


def test_snapshot_total_filters_by_labels_and_skips_non_numeric():
    snap = {
        "x": _family(
            "counter",
            ({"node": "a"}, 3),
            ({"node": "b"}, 4),
            ({"node": "c"}, {"histogram": "summary"}),
        )
    }
    assert snapshot_total(snap, "x") == 7
    assert snapshot_total(snap, "x", node="a") == 3
    assert snapshot_total(snap, "missing") == 0.0


# ----------------------------------------------------------------------
# Arrival plans and hub sharding
# ----------------------------------------------------------------------
def test_stream_plan_random_modes_are_deterministic_and_sorted():
    scenario = ClusterScenario(
        cubs=4, streams=12, duration=20.0, arrivals="zipf", seed=3
    )
    plan = scenario.stream_plan()
    assert plan == scenario.stream_plan()
    assert plan != ClusterScenario(
        cubs=4, streams=12, duration=20.0, arrivals="zipf", seed=4
    ).stream_plan()
    times = [at for _, _, at in plan]
    assert times == sorted(times)
    assert [index for index, _, _ in plan] == list(range(12))
    # Starts stay inside [first_start, 75% of the run) so streams have
    # the tail of the run to actually play.
    assert all(1.0 <= at < 15.0 for at in times)


def test_stream_plan_stagger_unchanged_by_new_fields():
    legacy = ClusterScenario(cubs=4, streams=3)
    assert legacy.stream_plan() == [
        (0, 0, 1.0), (1, 1, 1.25), (2, 2, 1.5)
    ]


def test_hub_sharding_matches_sim_shard_pinning():
    # The hub shard for a cub must be the same group the sharded
    # simulator pins it to, so multi-hub topologies mirror sim/shard.py
    # boundaries.
    scenario = ClusterScenario(cubs=8, hubs=3)
    assert [scenario.hub_of(cub) for cub in range(8)] == [
        cub * 3 // 8 for cub in range(8)
    ]
    # Every shard is non-empty and boundaries are monotone.
    shards = [scenario.hub_of(cub) for cub in range(8)]
    assert shards == sorted(shards)
    assert set(shards) == {0, 1, 2}
    # Non-cub nodes all talk to the first listener.
    assert scenario.hub_index_of("controller") == 0
    assert scenario.hub_index_of("controller:backup") == 0
    assert scenario.hub_index_of("cub:7") == 2


def test_node_connection_backpressure_and_hard_cap():
    class SlowWriter:
        """Never completes a drain, so frames pool in the queue."""

        def __init__(self):
            self.closed = False

        def write(self, _frame):
            pass

        async def drain(self):
            await asyncio.Event().wait()  # park forever

        def is_closing(self):
            return self.closed

        def close(self):
            self.closed = True

    class Counter:
        def __init__(self):
            self.value = 0

        def increment(self, amount=1):
            self.value += amount

    async def scenario():
        backpressure, dropped = Counter(), Counter()
        connection = NodeConnection(
            "cub:0", SlowWriter(), backpressure, dropped
        )
        frame = b"x" * 1024
        # Fill to just under the high watermark: no backpressure yet.
        for _ in range(SEND_HIGH_WATERMARK // len(frame) - 1):
            assert connection.send(frame)
        await asyncio.sleep(0)  # let the drainer park on drain()
        assert backpressure.value == 0 and not connection.paused
        # Crossing the watermark pauses once, not per frame.
        assert connection.send(frame)
        assert connection.send(frame)
        assert backpressure.value == 1 and connection.paused
        # Overflow the hard cap: frames drop and are counted.
        huge = b"y" * (SEND_QUEUE_HARD_CAP)
        assert not connection.send(huge)
        assert dropped.value == 1
        # A closed connection refuses everything quietly.
        connection.close()
        assert not connection.send(frame)
        assert dropped.value == 1
        await asyncio.sleep(0)

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# The DES replay and the comparison contract
# ----------------------------------------------------------------------
def test_sim_replay_produces_protocol_traffic():
    scenario = ClusterScenario(cubs=4, streams=3, duration=12.0)
    snapshot = run_scenario_in_sim(scenario)
    assert snapshot_total(snapshot, "controller.starts_routed") == 3
    assert snapshot_total(snapshot, "cub.inserts_performed") == 3
    assert snapshot_total(snapshot, "cub.blocks_sent") > 0
    assert snapshot_total(snapshot, "cub.viewer_states_forwarded") > 0


def test_sim_replay_with_kill_exercises_the_mirror_path():
    scenario = ClusterScenario(
        cubs=4, streams=4, duration=16.0, kill_cub=1
    )
    snapshot = run_scenario_in_sim(scenario)
    assert snapshot_total(snapshot, "cub.mirror_pieces_sent") > 0


def test_restripe_scenario_validation():
    with pytest.raises(ValueError, match="one entry per disk"):
        ClusterScenario(cubs=4, restripe_weights=(1, 2))
    with pytest.raises(ValueError, match=">= 1"):
        ClusterScenario(cubs=4, restripe_weights=(0,) * 8)
    with pytest.raises(ValueError, match="throttle"):
        ClusterScenario(cubs=4, restripe_throttle=0.0)
    with pytest.raises(ValueError, match="start"):
        ClusterScenario(
            cubs=4, duration=10.0, restripe_weights=(1,) * 8,
            restripe_start=10.0,
        )


def test_sim_replay_with_restripe_commits_moves():
    scenario = ClusterScenario(
        cubs=4, streams=3, duration=16.0,
        restripe_weights=(1, 1, 1, 1, 2, 2, 2, 2),
        restripe_throttle=0.5, restripe_start=2.0,
    )
    snapshot = run_scenario_in_sim(scenario)
    planned = snapshot_total(snapshot, "restripe.moves_planned")
    committed = snapshot_total(snapshot, "restripe.moves_committed")
    assert planned > 0
    assert 0 < committed <= planned
    # Same scenario, same plan: the replay is deterministic.
    assert committed == snapshot_total(
        run_scenario_in_sim(scenario), "restripe.moves_committed"
    )


def test_compare_counters_flags_only_out_of_band_values():
    scenario = ClusterScenario(cubs=4, streams=3, duration=12.0)
    snapshot = run_scenario_in_sim(scenario)
    rows = compare_counters(snapshot, snapshot)  # identical: all pass
    assert rows and all(ok for *_, ok in rows)

    drifted = {
        "cub.blocks_sent": _family(
            "counter",
            ({}, snapshot_total(snapshot, "cub.blocks_sent") * 10 + 1000),
        )
    }
    rows = compare_counters(snapshot, drifted)
    by_name = {row[0]: row for row in rows}
    assert not by_name["cub.blocks_sent"][4]


def test_relative_drift_is_zero_safe():
    assert relative_drift(0.0, 0.0) == 0.0
    assert relative_drift(0.0, 7.0) == 1.0
    assert relative_drift(7.0, 0.0) == 1.0
    assert relative_drift(100.0, 80.0) == pytest.approx(0.2)


def test_compare_counters_tolerates_zero_valued_baselines():
    """Regression: a no-kill scenario leaves mirror/deschedule counters
    at zero on the sim side — comparing (and rendering) those rows must
    not divide by zero, and zeros within the absolute floor pass."""
    live = {
        "cub.mirror_pieces_sent": _family("counter", ({}, 10)),
    }
    rows = compare_counters({}, live)  # every sim baseline is zero
    by_name = {row[0]: row for row in rows}
    # 10 live pieces against a zero baseline sit inside the floor of 40.
    assert by_name["cub.mirror_pieces_sent"][4]
    # Counters zero on both sides agree exactly.
    assert by_name["cub.blocks_sent"][1] == 0.0
    assert by_name["cub.blocks_sent"][4]


def test_report_render_shows_zero_safe_drift():
    scenario = ClusterScenario(cubs=4, streams=3, duration=12.0)
    report = ClusterReport(
        scenario=scenario,
        merged={},
        node_metrics={},
        byes={},
        unexpected_exits=[],
        wire_errors=[],
        kills=[],
        wall_seconds=1.0,
        workdir="/tmp/nowhere",
        comparison=[
            ("cub.blocks_sent", 0.0, 0.0, 30.0, True),
            ("cub.mirror_pieces_sent", 0.0, 10.0, 40.0, True),
        ],
        compared=True,
    )
    text = report.render()
    assert "drift=0%" in text
    assert "drift=100%" in text


def test_cluster_cli_exit_codes_without_tracebacks(monkeypatch, capsys):
    """Documented exit codes: 2 for a rejected scenario, 3 when the
    driver dies — one stderr line each, never a traceback."""
    from repro.cli import main

    code = main(["cluster", "--cubs", "2"])
    assert code == 2
    assert "at least 3 cubs" in capsys.readouterr().err

    import repro.live.cluster as cluster_mod

    def boom(*_args, **_kwargs):
        raise RuntimeError("node cub:1 refused to boot")

    monkeypatch.setattr(cluster_mod, "run_cluster", boom)
    code = main(["cluster", "--cubs", "3", "--duration", "8"])
    assert code == 3
    assert "cluster driver failed" in capsys.readouterr().err


# ----------------------------------------------------------------------
# One real cluster, end to end
# ----------------------------------------------------------------------
def test_live_cluster_survives_a_cub_kill():
    scenario = ClusterScenario(
        cubs=3,
        streams=3,
        duration=10.0,
        kill_cub=1,
        kill_at=4.0,
        num_files=4,
        file_duration_s=60.0,
    )
    report = run_cluster(scenario)
    assert report.kills == [(pytest.approx(4.0, abs=0.5), "cub:1")]
    assert snapshot_total(report.merged, "live.invariant_violations") == 0
    assert snapshot_total(report.merged, "cub.mirror_pieces_sent") > 0
    assert snapshot_total(report.merged, "live.client_blocks_received") > 0
    assert not report.unexpected_exits
    assert not report.wire_errors
    assert report.passed, report.render()
