"""Tests for the switched-network substrate."""

import pytest

from repro.faults.injectors import MessageFaultInjector
from repro.faults.plan import FaultPlan
from repro.net.message import KIND_DATA, Message
from repro.net.nic import Nic
from repro.net.node import NetworkNode
from repro.net.switch import SwitchedNetwork


class Sink(NetworkNode):
    """Test node collecting (payload, arrival_time) pairs."""

    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.received = []

    def handle_message(self, message):
        self.received.append((message.payload, self.sim.now))


def make_net(sim, rngs, jitter=0.0, latency=0.001):
    return SwitchedNetwork(sim, rngs, base_latency=latency, latency_jitter=jitter)


@pytest.fixture
def net_pair(sim, rngs):
    network = make_net(sim, rngs)
    a = Sink(sim, "a")
    b = Sink(sim, "b")
    network.register(a, 100e6)
    network.register(b, 100e6)
    return network, a, b


class TestMessage:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Message("a", "b", None, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", None, 10, kind="weird")

    def test_ids_are_unique(self):
        first = Message("a", "b", None, 10)
        second = Message("a", "b", None, 10)
        assert first.msg_id != second.msg_id


class TestNic:
    def test_serialization_delay(self):
        nic = Nic(8e6)  # 1 MB/s
        assert nic.serialization_delay(1_000_000) == pytest.approx(1.0)

    def test_fifo_queueing(self):
        nic = Nic(8e6)
        first_done = nic.enqueue(0.0, 1_000_000)
        second_done = nic.enqueue(0.0, 1_000_000)
        assert first_done == pytest.approx(1.0)
        assert second_done == pytest.approx(2.0)

    def test_utilization(self):
        nic = Nic(8e6)
        nic.enqueue(0.0, 500_000)
        assert nic.utilization(1.0) == pytest.approx(0.5)

    def test_queue_delay(self):
        nic = Nic(8e6)
        nic.enqueue(0.0, 1_000_000)
        assert nic.queue_delay(0.5) == pytest.approx(0.5)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            Nic(0.0)


class TestDelivery:
    def test_basic_delivery(self, sim, net_pair):
        network, a, b = net_pair
        network.send(Message("a", "b", "hello", 100))
        sim.run()
        assert b.received[0][0] == "hello"

    def test_latency_applied(self, sim, net_pair):
        network, a, b = net_pair
        network.send(Message("a", "b", "x", 100))
        sim.run()
        _, arrival = b.received[0]
        assert arrival >= 0.001

    def test_fifo_per_flow(self, sim, rngs):
        """Even with latency jitter, one flow delivers in order (TCP)."""
        network = make_net(sim, rngs, jitter=0.01)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        network.register(a, 100e6)
        network.register(b, 100e6)
        for index in range(50):
            network.send(Message("a", "b", index, 100))
        sim.run()
        payloads = [payload for payload, _ in b.received]
        assert payloads == list(range(50))

    def test_unknown_destination_raises(self, sim, net_pair):
        network, a, b = net_pair
        with pytest.raises(KeyError):
            network.send(Message("a", "nope", "x", 10))

    def test_unknown_source_raises(self, sim, net_pair):
        network, a, b = net_pair
        with pytest.raises(KeyError):
            network.send(Message("nope", "b", "x", 10))

    def test_duplicate_registration_rejected(self, sim, net_pair):
        network, a, b = net_pair
        with pytest.raises(ValueError):
            network.register(Sink(sim, "a"), 1e6)

    def test_delivery_hook_fires(self, sim, net_pair):
        network, a, b = net_pair
        seen = []
        network.add_delivery_hook(lambda message, when: seen.append(message.payload))
        network.send(Message("a", "b", "x", 10))
        sim.run()
        assert seen == ["x"]


class TestFailureSemantics:
    def test_failed_source_drops(self, sim, net_pair):
        network, a, b = net_pair
        a.fail()
        assert network.send(Message("a", "b", "x", 10)) is False
        sim.run()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_failed_destination_drops_silently(self, sim, net_pair):
        network, a, b = net_pair
        b.fail()
        assert network.send(Message("a", "b", "x", 10)) is True
        sim.run()
        assert b.received == []

    def test_recovered_destination_receives(self, sim, net_pair):
        network, a, b = net_pair
        b.fail()
        b.recover()
        network.send(Message("a", "b", "x", 10))
        sim.run()
        assert len(b.received) == 1

    def test_partition_drops_directionally(self, sim, net_pair):
        network, a, b = net_pair
        network.partition("a", "b")
        assert network.send(Message("a", "b", "x", 10)) is False
        assert network.send(Message("b", "a", "y", 10)) is True
        sim.run()
        assert len(a.received) == 1

    def test_heal_restores(self, sim, net_pair):
        network, a, b = net_pair
        network.partition("a", "b")
        network.heal("a", "b")
        network.send(Message("a", "b", "x", 10))
        sim.run()
        assert len(b.received) == 1


class TestPacedSend:
    def test_paced_arrival_after_pacing_duration(self, sim, net_pair):
        network, a, b = net_pair
        network.send_paced(Message("a", "b", "blk", 250_000, kind=KIND_DATA), 1.0)
        sim.run()
        _, arrival = b.received[0]
        assert arrival == pytest.approx(1.001, abs=0.001)

    def test_paced_charges_serialization_share(self, sim, net_pair):
        network, a, b = net_pair
        # 250 KB on a 100 Mbit/s NIC = 20 ms of wire time.
        network.send_paced(Message("a", "b", "blk", 250_000, kind=KIND_DATA), 1.0)
        sim.run(until=1.0)
        assert network.nic("a").utilization(1.0) == pytest.approx(0.02, abs=0.002)

    def test_negative_pacing_rejected(self, sim, net_pair):
        network, a, b = net_pair
        with pytest.raises(ValueError):
            network.send_paced(Message("a", "b", "x", 10), -1.0)


class _InjectorHost:
    """Minimal system shim so a MessageFaultInjector can install on a
    bare network (the real injector only touches .network and .rngs)."""

    def __init__(self, network, rngs):
        self.network = network
        self.rngs = rngs


def install_message_faults(network, rngs, plan):
    injector = MessageFaultInjector(_InjectorHost(network, rngs), plan)
    injector.install()
    return injector


class TestFifoUnderFaults:
    def test_delayed_message_not_overtaken(self, sim, rngs):
        """Regression: the per-flow FIFO floor used to be recorded from
        the pre-perturbation arrival, so a fault-delayed message could
        be overtaken by a later send on the same flow — impossible on
        the TCP connections the paper's control plane runs over."""
        network = make_net(sim, rngs)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        network.register(a, 100e6)
        network.register(b, 100e6)
        plan = FaultPlan().delay_messages(
            0.05, start=0.0, duration=1.0, jitter=0.0, kind="data"
        )
        install_message_faults(network, rngs, plan)
        network.send(Message("a", "b", "slow", 100, kind=KIND_DATA))
        # A second message on the same flow, sent while the first is
        # still fault-delayed in flight, and itself unperturbed.
        sim.call_at(
            0.005, lambda: network.send(Message("a", "b", "fast", 100))
        )
        sim.run()
        payloads = [payload for payload, _ in b.received]
        assert payloads == ["slow", "fast"]
        slow_arrival = b.received[0][1]
        fast_arrival = b.received[1][1]
        assert slow_arrival >= 0.05
        assert fast_arrival > slow_arrival

    def test_deliberate_reorder_still_reorders(self, sim, rngs):
        """A reorder fault's shifted arrival must not become the FIFO
        floor: the floor would otherwise clamp the very overtake the
        fault exists to create, and drag all later traffic with it."""
        network = make_net(sim, rngs)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        network.register(a, 100e6)
        network.register(b, 100e6)
        plan = FaultPlan().reorder_messages(
            1.0, shift=5.0, start=0.0, duration=1.0, kind="data"
        )
        install_message_faults(network, rngs, plan)
        network.send(Message("a", "b", "pushed", 100, kind=KIND_DATA))
        network.send(Message("a", "b", "later", 100))
        sim.run()
        payloads = [payload for payload, _ in b.received]
        # The control message overtakes the deliberately shifted one.
        assert payloads == ["later", "pushed"]
        # And the flow floor tracks the in-order delivery, not the
        # reordered outlier: a third send arrives after "pushed" only
        # because of its own latency, not a clamp.
        assert b.received[0][1] < b.received[1][1]


class TestFabricAccountingIdentity:
    def test_identity_under_duplicate_and_drop(self, sim, rngs):
        """sent - dropped + duplicated == scheduled, exactly, even when
        drop and duplicate faults hit the same traffic."""
        network = make_net(sim, rngs)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        network.register(a, 100e6)
        network.register(b, 100e6)
        plan = (
            FaultPlan()
            .drop_messages(0.4, start=0.0, duration=60.0)
            .duplicate_messages(0.4, start=0.0, duration=60.0)
        )
        install_message_faults(network, rngs, plan)
        for index in range(200):
            sim.call_at(
                index * 0.01,
                lambda index=index: network.send(
                    Message("a", "b", index, 100)
                ),
            )
        sim.run()
        # Both fault kinds actually fired.
        assert network.messages_dropped > 0
        assert network.messages_duplicated > 0
        assert network.messages_sent == 200
        assert (
            network.messages_sent
            - network.messages_dropped
            + network.messages_duplicated
            == network.messages_scheduled
        )
        # The run drained: everything scheduled was delivered.
        assert network.messages_delivered == network.messages_scheduled
        assert network.messages_in_flight == 0
        assert len(b.received) == network.messages_delivered

    def test_identity_counts_source_failure_drops(self, sim, net_pair):
        network, a, b = net_pair
        a.fail()
        network.send(Message("a", "b", "x", 10))
        assert network.messages_sent == 1
        assert network.messages_dropped == 1
        assert network.messages_scheduled == 0
        assert network.messages_in_flight == 0

    def test_in_flight_tracks_undelivered(self, sim, net_pair):
        network, a, b = net_pair
        network.send(Message("a", "b", "x", 100))
        assert network.messages_in_flight == 1
        sim.run()
        assert network.messages_in_flight == 0
        assert network.messages_delivered == 1


class TestTrafficAccounting:
    def test_control_vs_data_separated(self, sim, net_pair):
        network, a, b = net_pair
        network.send(Message("a", "b", "c", 100))
        network.send_paced(Message("a", "b", "d", 1000, kind=KIND_DATA), 0.1)
        sim.run()
        assert network.control_bytes_from["a"].total == 100
        assert network.data_bytes_from["a"].total == 1000

    def test_control_rate_snapshot(self, sim, net_pair):
        network, a, b = net_pair
        for _ in range(10):
            network.send(Message("a", "b", "c", 100))
        sim.run(until=10.0)
        assert network.control_rate_from("a", 10.0) == pytest.approx(100.0)
        # Window resets after snapshot.
        assert network.control_rate_from("a", 20.0) == 0.0
