"""FailurePlan driving a real TigerSystem, plus cub edge cases."""

import pytest

from repro import TigerSystem, small_config
from repro.disk.failure import FailurePlan


class TestFailurePlanIntegration:
    def test_scheduled_cub_failure_and_recovery(self):
        system = TigerSystem(small_config(), seed=41)
        system.add_standard_content(num_files=4, duration_s=240)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        plan = FailurePlan().fail_cub(1, at=20.0).recover_cub(1, at=45.0)
        plan.install(system.sim, system)
        system.run_for(70.0)
        assert system.cubs[1].failed is False
        assert system.total_mirror_pieces_sent() > 0
        system.assert_invariants()

    def test_scheduled_disk_failure(self):
        system = TigerSystem(small_config(), seed=42)
        system.add_standard_content(num_files=4, duration_s=240)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        FailurePlan().fail_disk(2, at=15.0).install(system.sim, system)
        system.run_for(40.0)
        assert system.cubs[2].disks[2].failed
        assert system.total_mirror_pieces_sent() > 0

    def test_rolling_failures_across_distant_cubs(self):
        """Fail one cub, recover it, fail a distant one — service
        survives both (they are never simultaneously down)."""
        system = TigerSystem(small_config(), seed=43)
        system.add_standard_content(num_files=4, duration_s=300)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        plan = (
            FailurePlan()
            .fail_cub(0, at=15.0)
            .recover_cub(0, at=40.0)
            .fail_cub(2, at=60.0)
        )
        plan.install(system.sim, system)
        system.run_for(90.0)
        system.finalize_clients()
        for monitor in client.all_monitors():
            # Streams progressed through both failure episodes.
            assert monitor.blocks_received > 50
        system.assert_invariants()


class TestCubEdgeCases:
    def test_failed_cub_sends_nothing(self):
        system = TigerSystem(small_config(), seed=44)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        client.start_stream(file_id=0)
        system.run_for(10.0)
        system.fail_cub(0)
        sent = system.cubs[0].blocks_sent.count
        system.run_for(20.0)
        assert system.cubs[0].blocks_sent.count == sent

    def test_unknown_payload_raises(self):
        system = TigerSystem(small_config(), seed=45)
        from repro.net.message import Message

        with pytest.raises(TypeError):
            system.cubs[0].handle_message(
                Message("controller", "cub:0", object(), 10)
            )

    def test_duplicate_start_request_ignored(self):
        """Client retries (controller failover) must not double-queue."""
        system = TigerSystem(small_config(), seed=46)
        system.add_standard_content(num_files=4, duration_s=120)
        from repro.core.protocol import StartRequest

        cub = system.cubs[0]
        request = StartRequest("client:0#1", 1, 0, 0, 0, 0.0)
        cub._on_start_request(request)
        cub._on_start_request(request)
        assert cub.queued_start_requests() == 1

    def test_mean_disk_utilization_zero_idle(self):
        system = TigerSystem(small_config(), seed=47)
        system.run_for(5.0)
        assert system.cubs[0].mean_disk_utilization() == 0.0

    def test_fail_then_recover_preserves_index(self):
        """A rebooted cub still has its disks' contents (the index is
        rebuilt from stable storage in real life; here it is shared)."""
        system = TigerSystem(small_config(), seed=48)
        system.add_file("movie", duration_s=60)
        system.start()
        system.fail_cub(1)
        system.run_for(5.0)
        system.recover_cub(1)
        index = system.indexes[1]
        assert index.num_primary_entries > 0

    def test_living_cubs_excludes_failed(self):
        system = TigerSystem(small_config(), seed=49)
        system.start()
        system.fail_cub(3)
        living = system.living_cubs()
        assert len(living) == system.config.num_cubs - 1
        assert all(cub.cub_id != 3 for cub in living)
