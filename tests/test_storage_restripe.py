"""Tests for restriping (paper §2.2)."""

import pytest

from repro.storage.catalog import Catalog
from repro.storage.layout import StripeLayout
from repro.storage.restripe import (
    BlockMove,
    RestripePlan,
    estimate_restripe_time,
    plan_restripe,
)


def build_catalog(num_disks, files=4, duration=50.0):
    catalog = Catalog(block_play_time=1.0, num_disks=num_disks)
    for index in range(files):
        catalog.add_file(f"f{index}", 2e6, duration)
    return catalog


def block_sizes(catalog, size=250_000):
    return {entry.file_id: size for entry in catalog.files()}


class TestPlan:
    def test_identity_restripe_moves_nothing(self):
        layout = StripeLayout(4, 2)
        catalog = build_catalog(layout.num_disks)
        plan = plan_restripe(layout, layout, catalog.files(), block_sizes(catalog))
        assert plan.total_bytes == 0

    def test_growth_moves_blocks(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(5, 2)
        catalog = build_catalog(old.num_disks)
        plan = plan_restripe(old, new, catalog.files(), block_sizes(catalog))
        assert plan.total_bytes > 0

    def test_moves_land_on_new_layout_positions(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(5, 2)
        catalog = build_catalog(old.num_disks, files=2)
        plan = plan_restripe(old, new, catalog.files(), block_sizes(catalog))
        for move in plan.moves:
            entry = catalog.get(move.file_id)
            assert move.dst_disk == new.disk_of_block(
                entry.start_disk % new.num_disks, move.block_index
            )
            assert move.src_disk == old.disk_of_block(
                entry.start_disk, move.block_index
            )

    def test_unmoved_blocks_not_in_plan(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(5, 2)
        catalog = build_catalog(old.num_disks, files=1)
        plan = plan_restripe(old, new, catalog.files(), block_sizes(catalog))
        planned = {(move.file_id, move.block_index) for move in plan.moves}
        entry = catalog.files()[0]
        for block in range(entry.num_blocks):
            src = old.disk_of_block(entry.start_disk, block)
            dst = new.disk_of_block(entry.start_disk % new.num_disks, block)
            assert ((entry.file_id, block) in planned) == (src != dst)

    def test_start_disk_override(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(4, 2)
        catalog = build_catalog(old.num_disks, files=1)
        entry = catalog.files()[0]
        plan = plan_restripe(
            old,
            new,
            catalog.files(),
            block_sizes(catalog),
            new_start_disks={entry.file_id: (entry.start_disk + 1) % 8},
        )
        # Shifting the start disk by one moves every block.
        assert len(plan.moves) == entry.num_blocks

    def test_override_outside_new_layout_rejected(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(4, 2)
        catalog = build_catalog(old.num_disks, files=1)
        entry = catalog.files()[0]
        for bad_disk in (new.num_disks, -1, 100):
            with pytest.raises(ValueError):
                plan_restripe(
                    old,
                    new,
                    catalog.files(),
                    block_sizes(catalog),
                    new_start_disks={entry.file_id: bad_disk},
                )

    def test_bytes_into_cub_uses_new_layout(self):
        # Same 8 disks, but regrouped 4x2 -> 2x4: disk 2 moves from
        # cub 2 to cub 0, so inbound accounting must follow the *new*
        # cub membership.
        old = StripeLayout(4, 2)
        new = StripeLayout(2, 4)
        plan = RestripePlan(old, new, [BlockMove(0, 0, 1, 2, 1000)])
        assert plan.bytes_into_cub() == {new.cub_of_disk(2): 1000}
        assert new.cub_of_disk(2) == 0

    def test_per_disk_accounting_sums_to_total(self):
        old = StripeLayout(4, 2)
        new = StripeLayout(5, 2)
        catalog = build_catalog(old.num_disks)
        plan = plan_restripe(old, new, catalog.files(), block_sizes(catalog))
        assert sum(plan.bytes_out_of_disk().values()) == plan.total_bytes
        assert sum(plan.bytes_into_disk().values()) == plan.total_bytes


class TestTimeEstimate:
    def test_zero_moves_zero_time(self):
        layout = StripeLayout(4, 2)
        catalog = build_catalog(layout.num_disks)
        plan = plan_restripe(layout, layout, catalog.files(), block_sizes(catalog))
        assert estimate_restripe_time(plan, 5e6, 5e6, 10e6) == 0.0

    def test_bad_rates_rejected(self):
        layout = StripeLayout(4, 2)
        catalog = build_catalog(layout.num_disks)
        plan = plan_restripe(layout, layout, catalog.files(), block_sizes(catalog))
        with pytest.raises(ValueError):
            estimate_restripe_time(plan, 0.0, 5e6, 10e6)

    def test_inbound_nic_bottleneck_charged(self):
        """Regression: when a few cubs receive most of the bytes, the
        destination NICs are the bottleneck.  Charging only source
        cubs (the old behaviour) under-estimates the restripe."""
        old = StripeLayout(4, 2)
        new = StripeLayout(4, 2)
        plan = RestripePlan(old, new)
        # Every disk ships one block, but everything lands on cub 1
        # (disks 1 and 5): inbound to cub 1 is the whole byte count.
        size = 1_000_000
        for src_disk in range(old.num_disks):
            dst_disk = 1 if src_disk < 4 else 5
            plan.moves.append(BlockMove(0, src_disk, src_disk, dst_disk, size))

        disk_read, disk_write, cub_net = 5e6, 50e6, 12e6
        estimate = estimate_restripe_time(plan, disk_read, disk_write, cub_net)

        inbound = max(plan.bytes_into_cub().values()) / cub_net
        stale_candidates = (
            [b / disk_read for b in plan.bytes_out_of_disk().values()]
            + [b / disk_write for b in plan.bytes_into_disk().values()]
            + [b / cub_net for b in plan.bytes_out_of_cub().values()]
        )
        # The old estimate (no inbound term) tops out strictly lower.
        assert max(stale_candidates) < inbound
        assert estimate == pytest.approx(inbound)

    def test_restripe_time_independent_of_system_size(self):
        """§2.2: restripe time depends on cub/disk size and speed, not
        on the number of cubs — the aggregate switch bandwidth grows
        with the system.  Growing N -> N+1 cubs at constant per-disk
        content should take roughly constant time across N."""
        times = []
        for cubs in (4, 8, 12):
            old = StripeLayout(cubs, 2)
            new = StripeLayout(cubs + 1, 2)
            # Constant data per disk: total files scale with disks.
            catalog = build_catalog(
                old.num_disks, files=old.num_disks, duration=40.0
            )
            plan = plan_restripe(old, new, catalog.files(), block_sizes(catalog))
            times.append(estimate_restripe_time(plan, 5e6, 5e6, 12e6))
        spread = max(times) / min(times)
        assert spread < 1.6, f"restripe times varied too much: {times}"
