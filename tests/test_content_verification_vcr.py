"""Content verification and VCR pause/resume."""


from repro import TigerSystem, small_config
from repro.core.protocol import BlockData, block_pattern


class TestBlockPattern:
    def test_deterministic(self):
        assert block_pattern(3, 17) == block_pattern(3, 17)

    def test_distinguishes_blocks(self):
        patterns = {block_pattern(f, b) for f in range(8) for b in range(200)}
        assert len(patterns) == 8 * 200  # no collisions in a catalog

    def test_nonzero(self):
        assert block_pattern(0, 1) != 0


class TestContentVerification:
    def test_clean_playback_has_zero_corrupt(self, small_system):
        client = small_system.add_client()
        client.start_stream(file_id=0)
        small_system.run_for(20.0)
        assert small_system.total_client_corrupt() == 0

    def test_failed_mode_content_still_correct(self):
        """Mirror-reconstructed blocks carry the right content too."""
        system = TigerSystem(small_config(), seed=64)
        system.add_standard_content(num_files=4, duration_s=240)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        system.run_for(10.0)
        system.fail_cub(1)
        system.run_for(30.0)
        assert system.total_client_corrupt() == 0
        assert system.total_mirror_pieces_sent() > 0

    def test_cross_wired_block_detected(self, small_system):
        """A block for the wrong position is rejected and counted."""
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        monitor = client.streams[instance]
        received_before = monitor.blocks_received
        bogus = BlockData(
            viewer_id=monitor.viewer_id,
            instance=instance,
            file_id=0,
            block_index=999,  # wrong position
            play_seqno=monitor.next_seqno,
            pattern=block_pattern(0, 999),
        )
        monitor.on_block(bogus, small_system.sim.now)
        assert monitor.blocks_corrupt == 1
        assert monitor.blocks_received == received_before

    def test_wrong_pattern_detected(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(8.0)
        monitor = client.streams[instance]
        bogus = BlockData(
            viewer_id=monitor.viewer_id,
            instance=instance,
            file_id=0,
            block_index=monitor.first_block + monitor.next_seqno,
            play_seqno=monitor.next_seqno,
            pattern=12345,  # garbage content
        )
        monitor.on_block(bogus, small_system.sim.now)
        assert monitor.blocks_corrupt == 1


class TestVcrPauseResume:
    def test_pause_frees_slot_and_bookmarks(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(12.0)
        watched = client.streams[instance].blocks_received
        resume_block = client.pause_stream(instance)
        small_system.run_for(5.0)
        assert small_system.oracle.num_occupied == 0
        assert resume_block is not None
        assert resume_block >= watched  # position at or past what played

    def test_resume_continues_from_bookmark(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(12.0)
        resume_block = client.pause_stream(instance)
        small_system.run_for(10.0)  # viewer gets coffee
        resumed = client.resume_stream(instance)
        small_system.run_for(20.0)
        monitor = client.streams[resumed]
        assert monitor.first_block == resume_block
        assert monitor.blocks_received > 10
        assert monitor.blocks_corrupt == 0
        small_system.assert_invariants()

    def test_pause_of_unknown_instance_is_none(self, small_system):
        client = small_system.add_client()
        assert client.pause_stream(9999) is None
        assert client.resume_stream(9999) is None

    def test_double_pause_is_harmless(self, small_system):
        client = small_system.add_client()
        instance = client.start_stream(file_id=0)
        small_system.run_for(10.0)
        first = client.pause_stream(instance)
        second = client.pause_stream(instance)
        assert first is not None
        assert second is None  # already stopped

    def test_resume_to_end_of_file(self):
        system = TigerSystem(small_config(), seed=65)
        system.add_standard_content(num_files=2, duration_s=40)
        client = system.add_client()
        instance = client.start_stream(file_id=0)
        system.run_for(15.0)
        client.pause_stream(instance)
        system.run_for(3.0)
        resumed = client.resume_stream(instance)
        system.run_for(40.0)
        monitor = client.streams[resumed]
        assert monitor.finished
        assert monitor.blocks_missed == 0
