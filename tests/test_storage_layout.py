"""Tests for cub-minor striping (paper §2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.layout import StripeLayout


@pytest.fixture
def layout():
    return StripeLayout(num_cubs=14, disks_per_cub=4)


class TestCubMinorNumbering:
    def test_paper_example(self, layout):
        """Disk 0 on cub 0, disk 1 on cub 1, disk n on cub 0 again."""
        assert layout.cub_of_disk(0) == 0
        assert layout.cub_of_disk(1) == 1
        assert layout.cub_of_disk(14) == 0
        assert layout.cub_of_disk(15) == 1

    def test_disks_of_cub(self, layout):
        assert layout.disks_of_cub(0) == (0, 14, 28, 42)
        assert layout.disks_of_cub(13) == (13, 27, 41, 55)

    def test_every_disk_belongs_to_exactly_one_cub(self, layout):
        seen = []
        for cub in range(layout.num_cubs):
            seen.extend(layout.disks_of_cub(cub))
        assert sorted(seen) == list(range(layout.num_disks))

    def test_local_index(self, layout):
        assert layout.local_index(0) == 0
        assert layout.local_index(14) == 1
        assert layout.local_index(42) == 3

    def test_out_of_range_disk_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.cub_of_disk(56)
        with pytest.raises(ValueError):
            layout.cub_of_disk(-1)

    def test_out_of_range_cub_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.disks_of_cub(14)

    def test_degenerate_configs_rejected(self):
        with pytest.raises(ValueError):
            StripeLayout(0, 4)
        with pytest.raises(ValueError):
            StripeLayout(4, 0)


class TestBlockPlacement:
    def test_consecutive_blocks_consecutive_disks(self, layout):
        disks = [layout.disk_of_block(5, block) for block in range(4)]
        assert disks == [5, 6, 7, 8]

    def test_wraps_at_highest_disk(self, layout):
        assert layout.disk_of_block(55, 1) == 0

    def test_consecutive_blocks_consecutive_cubs(self, layout):
        """The property the ring protocol depends on."""
        cubs = [layout.cub_of_block(0, block) for block in range(14)]
        assert cubs == list(range(14))

    def test_negative_block_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.disk_of_block(0, -1)

    @given(
        st.integers(0, 55),
        st.integers(0, 10_000),
    )
    def test_block_placement_is_start_plus_index_mod_n(self, start, block):
        layout = StripeLayout(14, 4)
        assert layout.disk_of_block(start, block) == (start + block) % 56

    @given(st.integers(2, 20), st.integers(1, 6), st.integers(0, 500))
    def test_every_disk_used_equally_over_full_cycle(self, cubs, disks_per, start_seed):
        """Striping load-balances: one full wrap touches every disk once."""
        layout = StripeLayout(cubs, disks_per)
        start = start_seed % layout.num_disks
        touched = [layout.disk_of_block(start, block) for block in range(layout.num_disks)]
        assert sorted(touched) == list(range(layout.num_disks))


class TestWeightedPlacement:
    def test_bad_weight_vectors_rejected(self):
        with pytest.raises(ValueError):
            StripeLayout(4, 2, (1, 1, 1))  # wrong length
        with pytest.raises(ValueError):
            StripeLayout(4, 2, (1, 1, 1, 1, 0, 1, 1, 1))  # zero weight
        with pytest.raises(ValueError):
            StripeLayout(2, 2, (1, 1, 1.5, 1))  # non-integer

    def test_weight_of_disk_defaults_to_one(self, layout):
        assert all(
            layout.weight_of_disk(d) == 1 for d in range(layout.num_disks)
        )

    @given(st.integers(2, 12), st.integers(1, 5), st.integers(0, 3000))
    def test_equal_weights_reduce_to_ring_placement(self, cubs, disks_per, pos):
        plain = StripeLayout(cubs, disks_per)
        weighted = plain.with_weights((1,) * plain.num_disks)
        start = pos % plain.num_disks
        block = pos // plain.num_disks
        assert (
            weighted.placement_disk_of_block(start, block)
            == plain.disk_of_block(start, block)
        )
        assert (
            plain.placement_disk_of_block(start, block)
            == plain.disk_of_block(start, block)
        )

    def test_placement_preserves_cub_ownership(self):
        layout = StripeLayout(4, 2, (1, 2, 1, 3, 2, 1, 1, 1))
        for start in range(layout.num_disks):
            for block in range(64):
                ring_disk = layout.disk_of_block(start, block)
                placed = layout.placement_disk_of_block(start, block)
                assert layout.cub_of_disk(placed) == layout.cub_of_disk(
                    ring_disk
                )

    def test_blocks_proportional_to_weights(self):
        """A weight-2 disk holds twice a weight-1 disk's blocks."""
        layout = StripeLayout(4, 2, (1, 1, 1, 1, 2, 2, 2, 2))
        counts = {d: 0 for d in range(layout.num_disks)}
        blocks = 4 * 3 * layout.num_cubs  # whole number of visit cycles
        for block in range(blocks):
            counts[layout.placement_disk_of_block(0, block)] += 1
        for cub in range(layout.num_cubs):
            low, high = cub, cub + layout.num_cubs
            assert counts[high] == 2 * counts[low]

    def test_weighted_sequence_interleaves(self):
        """Smooth round-robin: no long same-disk runs for weight 2."""
        layout = StripeLayout(1, 2, (1, 2))
        seq = [layout.placement_disk_of_block(0, b) for b in range(6)]
        assert seq == [0, 1, 1, 0, 1, 1]


class TestRingArithmetic:
    def test_next_disk_wraps(self, layout):
        assert layout.next_disk(55) == 0
        assert layout.next_disk(0, -1) == 55

    def test_next_cub_wraps(self, layout):
        assert layout.next_cub(13) == 0
        assert layout.next_cub(0, -1) == 13

    def test_ring_distance(self, layout):
        assert layout.ring_distance(0, 3) == 3
        assert layout.ring_distance(12, 2) == 4
        assert layout.ring_distance(5, 5) == 0

    @given(st.integers(0, 13), st.integers(0, 13))
    def test_ring_distance_inverse(self, a, b):
        layout = StripeLayout(14, 4)
        assert layout.next_cub(a, layout.ring_distance(a, b)) == b
