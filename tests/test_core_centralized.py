"""Tests for the centralized baseline and the §3.3 scalability math."""

import pytest

from repro.config import small_config
from repro.core.centralized import (
    CentralizedController,
    CommandCub,
    central_control_rate,
    distributed_control_rate_per_cub,
    scalability_table,
)
from repro.core.slots import SlotClock
from repro.net.node import NetworkNode
from repro.net.switch import SwitchedNetwork
from repro.storage.catalog import Catalog
from repro.storage.layout import StripeLayout


class RecordingClient(NetworkNode):
    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.blocks = []

    def handle_message(self, message):
        self.blocks.append((message.payload.play_seqno, self.sim.now))


def build_centralized(sim, rngs, config):
    layout = StripeLayout(config.num_cubs, config.disks_per_cub)
    clock = SlotClock(config.num_disks, config.num_slots, config.block_play_time)
    catalog = Catalog(config.block_play_time, config.num_disks)
    network = SwitchedNetwork(sim, rngs, base_latency=0.001, latency_jitter=0.0)
    cubs = [
        CommandCub(sim, index, config, catalog, network)
        for index in range(config.num_cubs)
    ]
    for cub in cubs:
        network.register(cub, config.cub_nic_bps)
    controller = CentralizedController(
        sim, config, layout, catalog, clock, network
    )
    network.register(controller, config.controller_nic_bps)
    return network, controller, cubs, catalog


class TestAnalyticModel:
    def test_paper_40k_stream_figure(self):
        """§3.3: 40,000 streams -> 3-4 Mbytes/s of controller traffic."""
        rate = central_control_rate(40_000, block_play_time=1.0)
        assert 3e6 <= rate <= 4.5e6

    def test_distributed_per_cub_rate_flat_in_system_size(self):
        """Per-cub control traffic is constant as the system grows at
        constant per-cub load — the crux of the design choice."""
        small = distributed_control_rate_per_cub(602, 14)
        huge = distributed_control_rate_per_cub(43_000, 1000)
        assert small == pytest.approx(huge, rel=0.01)

    def test_distributed_rate_matches_measured_magnitude(self):
        """The paper measured <21 KB/s per cub at 602 streams."""
        rate = distributed_control_rate_per_cub(602, 14)
        assert 5_000 < rate < 21_000

    def test_central_rate_crosses_distributed(self):
        """Central wins tiny, loses big: there is a crossover."""
        assert central_control_rate(50) < 21_000
        assert central_control_rate(40_000) > 21_000

    def test_scalability_table_rows(self):
        rows = scalability_table([14, 100, 1000])
        assert rows[0]["streams"] == 602
        assert rows[-1]["central_controller_Bps"] > 100 * rows[0][
            "central_controller_Bps"
        ] / 50
        per_cub = [row["distributed_per_cub_Bps"] for row in rows]
        assert max(per_cub) == pytest.approx(min(per_cub), rel=0.01)

    def test_negative_streams_rejected(self):
        with pytest.raises(ValueError):
            central_control_rate(-1)
        with pytest.raises(ValueError):
            distributed_control_rate_per_cub(10, 0)


class TestSimulatedBaseline:
    def test_end_to_end_delivery(self, sim, rngs):
        config = small_config()
        network, controller, cubs, catalog = build_centralized(sim, rngs, config)
        catalog.add_file("movie", 2e6, 20.0)
        client = RecordingClient(sim, "client:0")
        network.register(client, config.client_nic_bps)
        assert controller.start_viewer("client:0#1", 1, 0)
        sim.run(until=10.0)
        seqnos = [seqno for seqno, _ in client.blocks]
        assert seqnos == sorted(seqnos)
        assert len(seqnos) >= 5

    def test_blocks_paced_one_per_block_play_time(self, sim, rngs):
        config = small_config()
        network, controller, cubs, catalog = build_centralized(sim, rngs, config)
        catalog.add_file("movie", 2e6, 20.0)
        client = RecordingClient(sim, "client:0")
        network.register(client, config.client_nic_bps)
        controller.start_viewer("client:0#1", 1, 0)
        sim.run(until=12.0)
        times = [when for _, when in client.blocks]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == pytest.approx(1.0, abs=0.05) for gap in gaps)

    def test_control_traffic_proportional_to_streams(self, sim, rngs):
        config = small_config()
        network, controller, cubs, catalog = build_centralized(sim, rngs, config)
        catalog.add_file("movie", 2e6, 60.0)
        client = RecordingClient(sim, "client:0")
        network.register(client, config.client_nic_bps)
        for index in range(10):
            controller.start_viewer(f"client:0#{index}", index, 0)
        sim.run(until=20.0)
        measured = controller.control_bytes_per_second()
        assert measured == pytest.approx(
            central_control_rate(10), rel=0.25
        )

    def test_schedule_full_rejects(self, sim, rngs):
        config = small_config()
        network, controller, cubs, catalog = build_centralized(sim, rngs, config)
        catalog.add_file("movie", 2e6, 60.0)
        client = RecordingClient(sim, "client:0")
        network.register(client, config.client_nic_bps)
        admitted = 0
        for index in range(config.num_slots + 5):
            if controller.start_viewer(f"client:0#{index}", index, 0):
                admitted += 1
        assert admitted == config.num_slots

    def test_stop_viewer_frees_slot(self, sim, rngs):
        config = small_config()
        network, controller, cubs, catalog = build_centralized(sim, rngs, config)
        catalog.add_file("movie", 2e6, 60.0)
        client = RecordingClient(sim, "client:0")
        network.register(client, config.client_nic_bps)
        controller.start_viewer("client:0#1", 1, 0)
        slot = controller.schedule.occupied_slots()[0]
        controller.stop_viewer(1, slot)
        assert controller.schedule.is_free(slot)
        before = controller.commands_sent.count
        sim.run(until=5.0)
        assert controller.commands_sent.count == before
