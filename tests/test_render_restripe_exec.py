"""Tests for the schedule renderers and the restripe executor."""

import pytest

from repro import TigerSystem, small_config
from repro.analysis.render import (
    render_disk_schedule,
    render_network_schedule,
    render_view_summary,
)
from repro.core.netschedule import NetworkSchedule
from repro.core.slots import SlotClock
from repro.sim.core import Simulator
from repro.storage.catalog import Catalog
from repro.storage.layout import StripeLayout
from repro.storage.restripe import estimate_restripe_time, plan_restripe
from repro.storage.restripe_exec import RestripeExecutor


class TestDiskScheduleRender:
    def test_renders_occupancy_and_pointers(self):
        clock = SlotClock(8, 32, 1.0)
        text = render_disk_schedule(clock, {0: "A", 1: "A", 30: "B"}, now=2.5)
        assert "32 slots" in text
        assert "disk 0" in text
        assert "[" in text and "]" in text

    def test_free_schedule_is_dots(self):
        clock = SlotClock(4, 16, 1.0)
        text = render_disk_schedule(clock, {}, now=0.0)
        bar = text.splitlines()[1]
        assert set(bar.strip("[]")) == {"."}

    def test_pointer_rows_capped(self):
        clock = SlotClock(56, 602, 1.0)
        text = render_disk_schedule(clock, {}, now=0.0, max_pointer_rows=3)
        assert "more disks" in text

    def test_too_narrow_rejected(self):
        clock = SlotClock(4, 16, 1.0)
        with pytest.raises(ValueError):
            render_disk_schedule(clock, {}, now=0.0, width=4)


class TestNetworkScheduleRender:
    def test_bars_scale_with_load(self):
        schedule = NetworkSchedule(8.0, 10e6, 1.0)
        schedule.insert("a", 0.0, 10e6)  # full height at the start
        text = render_network_schedule(schedule, width=16, height=5)
        first_row = text.splitlines()[0]
        assert "#" in first_row  # reaches the capacity line

    def test_empty_schedule_is_blank(self):
        schedule = NetworkSchedule(8.0, 10e6, 1.0)
        text = render_network_schedule(schedule, width=16, height=4)
        assert "#" not in text
        assert "0% of plane" in text

    def test_too_small_rejected(self):
        schedule = NetworkSchedule(8.0, 10e6, 1.0)
        with pytest.raises(ValueError):
            render_network_schedule(schedule, width=4)


class TestViewSummaryRender:
    def test_summarizes_every_cub(self):
        system = TigerSystem(small_config(), seed=81)
        system.add_standard_content(num_files=2, duration_s=60)
        client = system.add_client()
        client.start_stream(file_id=0)
        system.run_for(5.0)
        text = render_view_summary(system)
        for cub in system.cubs:
            assert f"cub {cub.cub_id}" in text

    def test_marks_failed_cubs(self):
        system = TigerSystem(small_config(), seed=82)
        system.add_standard_content(num_files=2, duration_s=60)
        system.start()
        system.fail_cub(2)
        system.run_for(10.0)
        text = render_view_summary(system)
        assert "FAILED" in text
        assert "believes failed: [2]" in text


def build_plan(cubs_before, cubs_after, files=8, duration=60.0):
    old = StripeLayout(cubs_before, 2)
    new = StripeLayout(cubs_after, 2)
    catalog = Catalog(1.0, old.num_disks)
    for index in range(files):
        catalog.add_file(f"f{index}", 2e6, duration)
    sizes = {entry.file_id: 250_000 for entry in catalog.files()}
    return plan_restripe(old, new, catalog.files(), sizes)


class TestRestripeExecutor:
    RATES = dict(disk_read_rate=5.2e6, disk_write_rate=4.5e6, cub_network_rate=12e6)

    def test_empty_plan_is_instant(self):
        plan = build_plan(4, 4)
        result = RestripeExecutor(Simulator(), plan, **self.RATES).run()
        assert result.completion_time == 0.0
        assert result.blocks_moved == 0

    def test_moves_complete_and_account(self):
        plan = build_plan(4, 5)
        result = RestripeExecutor(Simulator(), plan, **self.RATES).run()
        assert result.blocks_moved == len(plan.moves)
        assert result.bytes_moved == plan.total_bytes
        assert result.completion_time > 0

    def test_execution_close_to_analytic_estimate(self):
        """The pipelined executor should land within a small factor of
        the bottleneck-resource estimate."""
        plan = build_plan(4, 5, files=16, duration=120.0)
        estimate = estimate_restripe_time(plan, 5.2e6, 4.5e6, 12e6)
        result = RestripeExecutor(Simulator(), plan, **self.RATES,).run()
        assert estimate <= result.completion_time <= 2.5 * estimate

    def test_wall_clock_flat_across_system_sizes(self):
        """The dynamic form of the §2.2 size-independence claim."""
        times = []
        for cubs in (4, 8, 16):
            plan = build_plan(cubs, cubs + 1, files=cubs * 2, duration=120.0)
            result = RestripeExecutor(Simulator(), plan, **self.RATES).run()
            times.append(result.completion_time)
        assert max(times) < 1.6 * min(times)

    def test_bad_rates_rejected(self):
        plan = build_plan(4, 5)
        with pytest.raises(ValueError):
            RestripeExecutor(Simulator(), plan, 0.0, 1.0, 1.0)

    def test_per_disk_read_busy_matches_hand_computation(self):
        """Readers charge busy time from the queued read start, so a
        disk's read busy is exactly blocks x (size/rate + overhead)."""
        from repro.storage.restripe import BlockMove, RestripePlan

        old = StripeLayout(2, 1)
        new = StripeLayout(2, 1)
        size = 500_000
        plan = RestripePlan(old, new, [
            BlockMove(0, 0, 0, 1, size),
            BlockMove(0, 1, 0, 1, size),
            BlockMove(0, 2, 0, 1, size),
            BlockMove(1, 0, 1, 0, size),
        ])
        rates = dict(
            disk_read_rate=5e6, disk_write_rate=4e6, cub_network_rate=10e6
        )
        overhead = 0.01
        result = RestripeExecutor(
            Simulator(), plan, per_block_overhead=overhead, **rates
        ).run()

        per_read = size / rates["disk_read_rate"] + overhead  # 0.11 s
        assert result.per_disk_read_busy[0] == pytest.approx(3 * per_read)
        assert result.per_disk_read_busy[1] == pytest.approx(per_read)
