"""Timing-level tests of the forwarding protocol (§4.1.1-4.1.2).

These watch the wire (via delivery hooks) to verify the *when* of the
protocol, not just the *what*: lead-time windows, deschedule
propagation distance, heartbeat cadence.
"""

import doctest


import repro
from repro import TigerSystem, small_config
from repro.core.protocol import DescheduleForward, Heartbeat, ViewerStateBatch


def test_module_doctest():
    """The README-level doctest in repro/__init__.py must stay honest."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0


class TestForwardingWindows:
    def test_viewer_states_arrive_within_lead_window(self):
        """Every steady-state viewer state must arrive at its serving
        cub between maxVStateLead and (roughly) minVStateLead before its
        due time."""
        system = TigerSystem(small_config(), seed=55)
        system.add_standard_content(num_files=4, duration_s=120)
        leads = []

        def hook(message, when):
            if isinstance(message.payload, ViewerStateBatch):
                for state in message.payload.states:
                    leads.append(state.due_time - when)

        system.network.add_delivery_hook(hook)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        system.run_for(30.0)

        config = system.config
        # Ignore the first insertion transient: a fresh chain's lead
        # builds up hop by hop until it reaches the window, so filter
        # to records well past the start of play.
        steady = [lead for lead in leads if lead > config.min_vstate_lead - 1.0]
        assert steady, "no steady-state forwards observed"
        pump = config.forward_pump_interval
        for lead in steady:
            assert lead <= config.max_vstate_lead + 1e-6
        # The bulk must respect the minimum lead (allowing pump jitter).
        violations = [
            lead
            for lead in steady
            if lead < config.min_vstate_lead - pump - 0.1
        ]
        assert len(violations) < len(steady) * 0.02

    def test_double_forwarding_two_recipients_per_state(self):
        """Each forwarded state reaches exactly two cubs (succ + succ2)."""
        system = TigerSystem(small_config(), seed=56)
        system.add_standard_content(num_files=2, duration_s=60)
        recipients = {}

        def hook(message, when):
            if isinstance(message.payload, ViewerStateBatch):
                for state in message.payload.states:
                    recipients.setdefault(state.key(), set()).add(message.dst)

        system.network.add_delivery_hook(hook)
        client = system.add_client()
        client.start_stream(file_id=0)
        system.run_for(15.0)
        steady = {
            key: cubs for key, cubs in recipients.items() if key[1] > 2
        }
        assert steady
        assert all(len(cubs) == 2 for cubs in steady.values())

    def test_heartbeats_flow_at_configured_cadence(self):
        system = TigerSystem(small_config(), seed=57)
        system.add_standard_content(num_files=2, duration_s=60)
        beats = []

        def hook(message, when):
            if isinstance(message.payload, Heartbeat):
                beats.append((message.src, message.dst, when))

        system.network.add_delivery_hook(hook)
        system.run_until(10.0)
        per_pair = {}
        for src, dst, when in beats:
            per_pair.setdefault((src, dst), []).append(when)
        # Every cub beacons to its deadman neighbourhood (on a 4-cub
        # ring, distance 2 wraps, so there are 3 distinct neighbours).
        expected_pairs = sum(
            len(cub.deadman.watched) for cub in system.cubs
        )
        assert len(per_pair) == expected_pairs
        interval = system.config.heartbeat_interval
        for times in per_pair.values():
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(abs(gap - interval) < 0.05 for gap in gaps)


class TestDeschedulePropagation:
    def test_deschedule_stops_within_max_lead_horizon(self):
        """Deschedules propagate "until they're more than maxVStateLead
        in front of the slot being descheduled" — cubs far ahead hold a
        tombstone only if the request reached them."""
        system = TigerSystem(small_config(), seed=58)
        system.add_standard_content(num_files=4, duration_s=120)
        deschedule_deliveries = []

        def hook(message, when):
            if isinstance(message.payload, DescheduleForward):
                deschedule_deliveries.append(message.dst)

        system.network.add_delivery_hook(hook)
        client = system.add_client()
        instance = client.start_stream(file_id=0)
        system.run_for(10.0)
        client.stop_stream(instance)
        system.run_for(5.0)
        # Bounded flood: with 4 cubs, at most controller(2) + each cub
        # reforwarding twice = well under 20 messages; crucially it
        # terminated rather than circulating forever.
        assert 2 <= len(deschedule_deliveries) <= 24
        before = len(deschedule_deliveries)
        system.run_for(10.0)
        assert len(deschedule_deliveries) == before

    def test_stale_deschedule_harmless_after_slot_reuse(self):
        """"Having a deschedule request floating around after the slot
        has been reallocated will not cause incorrect results."""
        system = TigerSystem(small_config(), seed=59)
        system.add_standard_content(num_files=4, duration_s=120)
        client = system.add_client()
        first = client.start_stream(file_id=0)
        system.run_for(8.0)
        # Stop, then immediately restart into (likely) the same slot.
        client.stop_stream(first)
        second = client.start_stream(file_id=1)
        # Re-deliver the SAME deschedule long after reallocation.
        from repro.core.viewerstate import DescheduleRequest
        from repro.core.protocol import DescheduleForward
        from repro.net.message import DESCHEDULE_BYTES, Message

        monitor = client.streams[first]
        system.run_for(10.0)
        stale = DescheduleRequest(
            monitor.viewer_id, first, slot=0, issue_time=system.sim.now
        )
        for cub in system.cubs:
            system.network.send(
                Message(
                    "controller",
                    cub.address,
                    DescheduleForward(stale),
                    DESCHEDULE_BYTES,
                )
            )
        system.run_for(10.0)
        # The new play is unharmed.
        assert client.streams[second].blocks_received > 10
        system.assert_invariants()


class TestRecovery:
    def test_recover_clears_protocol_state(self):
        system = TigerSystem(small_config(), seed=60)
        system.add_standard_content(num_files=4, duration_s=240)
        client = system.add_client()
        for index in range(8):
            client.start_stream(file_id=index % 4)
        system.run_for(15.0)
        cub = system.cubs[1]
        system.fail_cub(1)
        system.run_for(20.0)
        system.recover_cub(1)
        assert cub.queued_start_requests() == 0
        assert not cub.failed
        system.run_for(20.0)
        system.assert_invariants()
