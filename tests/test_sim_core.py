"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.core as sim_core
from repro.sim.core import SimulationError, Simulator
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, Event


class TestScheduling:
    def test_call_after_fires_in_order(self, sim):
        fired = []
        sim.call_after(2.0, fired.append, "late")
        sim.call_after(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_call_at_absolute_time(self, sim):
        fired = []
        sim.call_at(5.0, fired.append, sim)
        sim.run()
        assert sim.now == 5.0
        assert fired

    def test_clock_advances_to_event_time(self, sim):
        sim.call_after(3.5, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(3.5)

    def test_same_time_fifo_order(self, sim):
        fired = []
        for tag in range(5):
            sim.call_at(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self, sim):
        fired = []
        sim.call_at(1.0, fired.append, "normal")
        sim.call_at(1.0, fired.append, "low", priority=PRIORITY_LOW)
        sim.call_at(1.0, fired.append, "high", priority=PRIORITY_HIGH)
        sim.run()
        assert fired == ["high", "normal", "low"]

    def test_scheduling_in_past_raises(self, sim):
        sim.call_after(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_scheduling_at_now_is_allowed(self, sim):
        fired = []
        sim.call_after(1.0, lambda: sim.call_at(sim.now, fired.append, "x"))
        sim.run()
        assert fired == ["x"]

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-0.1, lambda: None)

    def test_none_callback_raises(self):
        with pytest.raises(ValueError):
            Event(0.0, None)

    def test_events_chain(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.call_after(1.0, second)

        def second():
            fired.append("second")

        sim.call_after(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == pytest.approx(2.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.call_after(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.call_after(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.active

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        victim = sim.call_after(2.0, fired.append, "victim")
        sim.call_after(1.0, victim.cancel)
        sim.run()
        assert fired == []

    def test_cancelled_events_do_not_advance_clock(self, sim):
        event = sim.call_after(10.0, lambda: None)
        sim.call_after(1.0, lambda: None)
        event.cancel()
        sim.run()
        assert sim.now == pytest.approx(1.0)


class TestRunControl:
    def test_run_until_stops_before_future_events(self, sim):
        fired = []
        sim.call_after(1.0, fired.append, "a")
        sim.call_after(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == pytest.approx(2.0)

    def test_run_until_then_continue(self, sim):
        fired = []
        sim.call_after(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["b"]

    def test_run_until_advances_clock_with_no_events(self, sim):
        sim.run(until=7.0)
        assert sim.now == pytest.approx(7.0)

    def test_max_events_limits_dispatch(self, sim):
        fired = []
        for tag in range(10):
            sim.call_after(float(tag + 1), fired.append, tag)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_until_with_max_events_keeps_clock_monotonic(self, sim):
        """Regression: a ``max_events`` exit must not jump the clock to
        ``until`` while earlier events are still pending — the next run
        would otherwise move time backwards."""
        fired = []
        for tag in range(5):
            sim.call_after(float(tag + 1), fired.append, tag)
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == pytest.approx(2.0)
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.now == pytest.approx(10.0)

    def test_stop_with_until_does_not_advance_clock(self, sim):
        sim.call_after(1.0, sim.stop)
        sim.call_after(5.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == pytest.approx(1.0)

    def test_stop_aborts_run(self, sim):
        fired = []
        sim.call_after(1.0, fired.append, "a")
        sim.call_after(2.0, sim.stop)
        sim.call_after(3.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_run_is_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.call_after(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_time_skips_cancelled(self, sim):
        event = sim.call_after(1.0, lambda: None)
        sim.call_after(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == pytest.approx(2.0)

    def test_events_dispatched_counter(self, sim):
        for _ in range(4):
            sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 4

    def test_start_time_offset(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0
        sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.now == pytest.approx(101.0)


class TestPendingStop:
    """A stop() requested while no run is active must stop the next run.

    Regression: ``run()`` used to reset the stop flag on entry, silently
    erasing any stop requested between runs (e.g. by a live-backend
    shutdown handler firing while the driver was between drive calls).
    """

    def test_stop_between_runs_halts_next_run(self, sim):
        fired = []
        sim.call_after(1.0, fired.append, "a")
        sim.stop()
        sim.run()
        assert fired == []
        assert sim.now == 0.0
        # The stop was consumed by the aborted run; the one after it
        # proceeds normally.
        sim.run()
        assert fired == ["a"]

    def test_pending_stop_does_not_advance_until(self, sim):
        sim.stop()
        sim.run(until=5.0)
        assert sim.now == 0.0

    def test_each_run_consumes_one_stop(self, sim):
        sim.stop()
        sim.stop()  # stop is a flag, not a queue: two requests, one abort
        sim.run()
        fired = []
        sim.call_after(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]


def _run_cancel_scenario(times, cancels, compact_floor):
    """Drive one schedule/cancel scenario at a given compaction floor.

    ``times`` schedules one recording event per entry (on a 0.1 s grid);
    each ``(when, victim)`` in ``cancels`` schedules a canceller event
    that cancels the victim-th recorded event mid-run — after it fired,
    cancellation is a no-op, same as the real kernel's callers.
    """
    original = sim_core._COMPACT_MIN_TOMBSTONES
    sim_core._COMPACT_MIN_TOMBSTONES = compact_floor
    try:
        sim = Simulator()
        fired = []
        events = [
            sim.call_at(tick / 10.0, fired.append, index)
            for index, tick in enumerate(times)
        ]
        for tick, victim in cancels:
            sim.call_at(tick / 10.0, events[victim % len(events)].cancel)
        sim.run()
        return fired, sim.events_dispatched, sim.now
    finally:
        sim_core._COMPACT_MIN_TOMBSTONES = original


class TestHeapCompaction:
    """Lazy tombstone compaction must be invisible to dispatch."""

    def test_mass_cancellation_shrinks_heap(self, sim):
        keepers = []
        for index in range(10):
            sim.call_after(float(index + 1), keepers.append, index)
        victims = [
            sim.call_after(1000.0 + index, lambda: None) for index in range(500)
        ]
        for event in victims:
            event.cancel()
        # Without compaction all 500 tombstones would sit in the heap
        # until their pop time; with it, repeated rebuilds keep the heap
        # near the live population.
        assert len(sim._heap) < 150
        sim.run()
        assert keepers == list(range(10))
        assert sim.events_dispatched == 10

    def test_compaction_resets_tombstone_count(self, sim):
        victims = [sim.call_after(1.0, lambda: None) for _ in range(200)]
        for event in victims:
            event.cancel()
        assert sim._cancelled_in_heap < len(victims)
        sim.run()
        assert sim._cancelled_in_heap == 0
        assert sim.events_dispatched == 0

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=120),
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 119)), max_size=80
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_compaction_preserves_dispatch_order(self, times, cancels):
        """Property: an aggressively compacting kernel dispatches the
        exact same sequence (order, count, final clock) as one that
        never compacts, for any schedule/cancel interleaving."""
        eager = _run_cancel_scenario(times, cancels, compact_floor=0)
        reference = _run_cancel_scenario(
            times, cancels, compact_floor=10**9
        )
        assert eager == reference


class TestBudgetVsTombstones:
    """Audit pin-downs: the ``run(until, max_events)`` budget counts
    dispatched events only.  ``run`` peeks past tombstones before every
    step, so a cancelled event can never consume budget or clock — these
    tests freeze that property against future kernel refactors (the
    TombstoneHeap extraction relies on it)."""

    def test_cancelled_events_do_not_consume_max_events(self, sim):
        fired = []
        victims = [sim.call_after(float(i + 1), lambda: None) for i in range(50)]
        for event in victims:
            event.cancel()
        # Live events scheduled after the 50 tombstones in time order.
        for tag in range(3):
            sim.call_after(100.0 + tag, fired.append, tag)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]
        assert sim.events_dispatched == 3

    def test_budget_exhaustion_clock_ignores_earlier_tombstones(self, sim):
        fired = []
        sim.call_after(1.0, fired.append, "a")
        victim = sim.call_after(2.0, lambda: None)
        victim.cancel()
        sim.call_after(3.0, fired.append, "b")
        sim.call_after(4.0, fired.append, "c")
        sim.run(until=10.0, max_events=2)
        # Both live events fit the budget; the tombstone at t=2 neither
        # burned budget nor stalled the clock at its own time, and the
        # budget-exhaustion exit leaves the clock at the last dispatch.
        assert fired == ["a", "b"]
        assert sim.now == pytest.approx(3.0)
        sim.run(until=10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == pytest.approx(10.0)

    def test_compaction_mid_run_keeps_monotonic_exit_clock(self):
        """A compaction triggered between dispatches must not perturb
        where the clock lands when ``until`` passes with the remaining
        heap all tombstones."""
        original = sim_core._COMPACT_MIN_TOMBSTONES
        sim_core._COMPACT_MIN_TOMBSTONES = 4
        try:
            sim = Simulator()
            victims = [
                sim.call_after(50.0 + i, lambda: None) for i in range(40)
            ]
            sim.call_after(1.0, lambda: [e.cancel() for e in victims])
            sim.run(until=20.0)
            # Everything left in the heap was cancelled; the clock must
            # advance to the horizon, not to any tombstone's time.
            assert sim.now == pytest.approx(20.0)
            assert sim.events_dispatched == 1
            sim.run(until=60.0)
            assert sim.now == pytest.approx(60.0)
            assert sim.events_dispatched == 1
        finally:
            sim_core._COMPACT_MIN_TOMBSTONES = original
