"""Tests for the file catalog and the per-cub block index."""

import pytest

from repro.storage.blockindex import INDEX_ENTRY_BYTES, BlockIndex
from repro.storage.catalog import (
    MODE_MULTIPLE_BITRATE,
    MODE_SINGLE_BITRATE,
    Catalog,
    TigerFile,
)
from repro.disk.zones import ZONE_INNER, ZONE_OUTER


@pytest.fixture
def catalog():
    return Catalog(block_play_time=1.0, num_disks=56)


class TestTigerFile:
    def test_num_blocks_covers_duration(self, catalog):
        entry = catalog.add_file("movie", 2e6, 100.0)
        assert entry.num_blocks == 100

    def test_partial_final_block(self, catalog):
        entry = catalog.add_file("short", 2e6, 10.5)
        assert entry.num_blocks == 11

    def test_content_bytes_per_block(self, catalog):
        entry = catalog.add_file("movie", 2e6, 100.0)
        assert entry.content_bytes_per_block == 250_000

    def test_single_bitrate_internal_fragmentation(self, catalog):
        """Slower files waste block space in a single-bitrate server."""
        entry = catalog.add_file("slow", 1e6, 100.0)
        stored = entry.stored_bytes_per_block(MODE_SINGLE_BITRATE, 2e6)
        assert stored == 250_000
        assert entry.internal_fragmentation(MODE_SINGLE_BITRATE, 2e6) == pytest.approx(0.5)

    def test_multiple_bitrate_no_fragmentation(self, catalog):
        entry = catalog.add_file("slow", 1e6, 100.0)
        assert entry.internal_fragmentation(MODE_MULTIPLE_BITRATE, 2e6) == 0.0

    def test_over_max_bitrate_rejected_in_single_mode(self, catalog):
        entry = catalog.add_file("fast", 4e6, 100.0)
        with pytest.raises(ValueError):
            entry.stored_bytes_per_block(MODE_SINGLE_BITRATE, 2e6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TigerFile(0, "x", -1.0, 10.0, 1.0, 0)
        with pytest.raises(ValueError):
            TigerFile(0, "x", 1e6, 0.0, 1.0, 0)


class TestCatalog:
    def test_round_robin_start_disks(self, catalog):
        first = catalog.add_file("a", 2e6, 10.0)
        second = catalog.add_file("b", 2e6, 10.0)
        assert first.start_disk == 0
        assert second.start_disk == 1

    def test_explicit_start_disk(self, catalog):
        entry = catalog.add_file("a", 2e6, 10.0, start_disk=30)
        assert entry.start_disk == 30

    def test_duplicate_name_rejected(self, catalog):
        catalog.add_file("a", 2e6, 10.0)
        with pytest.raises(ValueError):
            catalog.add_file("a", 2e6, 10.0)

    def test_lookup_by_id_and_name(self, catalog):
        entry = catalog.add_file("a", 2e6, 10.0)
        assert catalog.get(entry.file_id) is entry
        assert catalog.by_name("a") is entry

    def test_contains_and_len(self, catalog):
        catalog.add_file("a", 2e6, 10.0)
        assert "a" in catalog
        assert "b" not in catalog
        assert len(catalog) == 1

    def test_out_of_range_start_disk_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.add_file("a", 2e6, 10.0, start_disk=56)


class TestBlockIndex:
    def test_primary_in_outer_zone(self):
        index = BlockIndex(0)
        location = index.add_primary(0, 0, 0, 250_000)
        assert location.zone == ZONE_OUTER

    def test_secondary_in_inner_zone(self):
        index = BlockIndex(0)
        location = index.add_secondary(0, 0, 0, 1, 62_500)
        assert location.zone == ZONE_INNER

    def test_lookup_roundtrip(self):
        index = BlockIndex(0)
        index.add_primary(3, 17, 0, 250_000)
        location = index.lookup_primary(3, 17)
        assert location is not None and location.size_bytes == 250_000
        assert index.lookup_primary(3, 18) is None

    def test_secondary_lookup_by_piece(self):
        index = BlockIndex(0)
        index.add_secondary(1, 2, 3, 5, 62_500)
        assert index.lookup_secondary(1, 2, 3) is not None
        assert index.lookup_secondary(1, 2, 0) is None

    def test_duplicate_entries_rejected(self):
        index = BlockIndex(0)
        index.add_primary(0, 0, 0, 100)
        with pytest.raises(ValueError):
            index.add_primary(0, 0, 0, 100)
        index.add_secondary(0, 0, 0, 1, 25)
        with pytest.raises(ValueError):
            index.add_secondary(0, 0, 0, 1, 25)

    def test_offsets_accumulate_per_disk(self):
        index = BlockIndex(0)
        first = index.add_primary(0, 0, 0, 100)
        second = index.add_primary(0, 1, 0, 100)
        other_disk = index.add_primary(0, 2, 14, 100)
        assert first.offset_bytes == 0
        assert second.offset_bytes == 100
        assert other_disk.offset_bytes == 0

    def test_memory_model_64_bit_entries(self):
        """The paper's in-memory metadata: 64 bits per entry."""
        index = BlockIndex(0)
        for block in range(10):
            index.add_primary(0, block, 0, 100)
        for block in range(5):
            index.add_secondary(0, block, 0, 1, 25)
        assert index.memory_bytes() == 15 * INDEX_ENTRY_BYTES

    def test_per_disk_usage_accounting(self):
        index = BlockIndex(0)
        index.add_primary(0, 0, 0, 100)
        index.add_secondary(0, 5, 1, 0, 30)
        assert index.primary_bytes_on_disk(0) == 100
        assert index.secondary_bytes_on_disk(0) == 30
