#!/usr/bin/env python
"""Premiere night: every viewer wants the same movie (§2.2's motivation).

Video servers that place whole movies on single machines must replicate
hot content to survive skewed demand.  Tiger's answer is striping:
"the system will not overload even if all of the viewers request the
same file, assuming that they are equitemporally spaced.  If they are
not, Tiger will delay starting streams in order to enforce
equitemporal spacing."

This example fills a system to capacity with viewers of ONE file and
shows (a) per-component load stays balanced, and (b) the enforced
spacing appears as insertion delay, not overload.

Run:  python examples/hot_movie_premiere.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro import TigerSystem, small_config
from repro.sim.stats import summarize


def main() -> None:
    system = TigerSystem(small_config(), seed=99)
    premiere = system.add_file("the-tiger-king", duration_s=600)
    # A little cold content for contrast.
    system.add_file("b-roll", duration_s=600)

    clients = system.add_clients(2)
    capacity = system.config.num_slots
    print(f"Premiere: {capacity} viewers all requesting "
          f"{premiere.name!r} at once\n")

    instances = []
    for index in range(capacity):
        instances.append(
            (clients[index % 2], clients[index % 2].start_stream(premiere.file_id))
        )

    system.run_for(40.0)

    admitted = [
        client.streams[instance]
        for client, instance in instances
        if client.streams[instance].startup_latency is not None
    ]
    latencies = [monitor.startup_latency for monitor in admitted]
    stats = summarize(latencies)
    print(f"Admitted {len(admitted)}/{capacity} viewers so far")
    print(f"Startup delay: min {stats['min']:.2f}s  median {stats['p50']:.2f}s  "
          f"p95 {stats['p95']:.2f}s  max {stats['max']:.2f}s")
    print("(The spread IS the equitemporal spacing: each start waits for a "
          "free slot\n to pass under the single disk holding block 0.)\n")

    print("Component load while serving one single hot file:")
    for cub in system.cubs:
        bar = "#" * int(cub.mean_disk_utilization() * 40)
        print(f"  {cub.name}: disks {cub.mean_disk_utilization():5.1%} {bar}")

    utils = [cub.mean_disk_utilization() for cub in system.cubs]
    spread = max(utils) - min(utils)
    print(f"\nMax-min disk load spread: {spread:.1%} — no hotspot despite "
          f"100% demand skew.")

    # And nobody lost data:
    system.finalize_clients()
    print(f"Losses: {system.total_client_missed()} missed, "
          f"{system.total_client_late()} late "
          f"out of {system.total_client_received()} blocks delivered")


if __name__ == "__main__":
    main()
