#!/usr/bin/env python
"""Failover drill: cut power to a cub and watch mirror takeover (§2.3).

Reproduces the paper's reconfiguration experiment: load the system to
50% of capacity, kill a cub, and measure the window between the
earliest and latest lost block (the paper saw ~8 seconds).  Then show
that declustered mirroring spreads the dead cub's work across its
successors and that service continues indefinitely.

Run:  python examples/failover_drill.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro import TigerSystem, small_config
from repro.workloads import ContinuousWorkload


def main() -> None:
    system = TigerSystem(small_config(), seed=7)
    system.add_standard_content(num_files=8, duration_s=300)
    workload = ContinuousWorkload(system)

    half_capacity = system.config.num_slots // 2
    workload.add_streams(half_capacity)
    system.run_for(15.0)
    print(f"Running {system.oracle.num_occupied} streams "
          f"({system.oracle.load:.0%} of capacity), no failures: "
          f"{system.total_client_missed()} client-reported losses")

    victim = 1
    failure_time = system.sim.now
    print(f"\n*** t={failure_time:.1f}s: cutting power to cub {victim} "
          f"(disks {list(system.cubs[victim].disks)}) ***")
    print(f"    deadman timeout: {system.config.deadman_timeout:.0f} s")
    print(f"    mirror pieces for its disks live on cubs "
          f"{system.mirror.covering_cubs(victim)}")
    system.fail_cub(victim)

    system.run_for(60.0)
    system.finalize_clients()

    loss_times = sorted(
        when
        for client in system.clients
        for monitor in client.all_monitors()
        for when in monitor.loss_times
    )
    if loss_times:
        window = loss_times[-1] - loss_times[0]
        print(f"\nClient logs: {len(loss_times)} lost blocks between "
              f"t={loss_times[0]:.1f}s and t={loss_times[-1]:.1f}s")
        print(f"Reconfiguration window: {window:.1f} s "
              f"(paper measured ~8 s on real hardware)")
    else:
        print("\nNo blocks lost (unexpectedly clean failover)")

    print(f"\nMirror service since the failure:")
    for cub in system.cubs:
        if cub.mirror_pieces_sent.count:
            print(f"  {cub.name}: {cub.mirror_pieces_sent.count} secondary "
                  f"pieces sent, disks at {cub.mean_disk_utilization():.0%}")

    # Streams keep flowing: measure a clean post-failover minute.
    received_before = system.total_client_received()
    missed_before = system.total_client_missed()
    system.run_for(30.0)
    system.finalize_clients()
    print(f"\nSteady failed-mode check (30 s): "
          f"{system.total_client_received() - received_before} blocks "
          f"delivered, "
          f"{system.total_client_missed() - missed_before} lost")
    system.assert_invariants()
    print("Schedule invariants held throughout the failure.")


if __name__ == "__main__":
    main()
