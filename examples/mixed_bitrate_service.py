#!/usr/bin/env python
"""Serving a mixed-bitrate catalog (§3.2, completed as an extension).

The 1997 Tiger shipped single-bitrate; the paper designed — but never
finished — the multiple-bitrate system.  This example runs our
completion of it: joint disk+network admission over a 2-D network
schedule, earliest-deadline-first disk service ("entries in the disk
schedule are free to move around, as long as they're completed before
they're due at the network"), and the bottleneck flip the paper
predicts.

Run:  python examples/mixed_bitrate_service.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro.disk.model import DiskParameters
from repro.mbr import MbrAdmission, MbrCubSimulation, run_mix_experiment
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


def admission_walkthrough() -> None:
    print("=== Joint admission on one cub (4 disks, 100 Mbit NIC) ===")
    admission = MbrAdmission(
        disk_params=DiskParameters(),
        num_disks=4,
        nic_bps=100e6,
        block_play_time=1.0,
        schedule_length=1.0,
        start_quantum=0.25,
        disk_headroom=0.95,
    )
    catalog = [
        ("audiobook", 0.25e6), ("newscast", 1e6), ("movie", 2e6),
        ("sports-hd", 4e6), ("premiere-uhd", 8e6),
    ]
    count = 0
    while True:
        name, rate = catalog[count % len(catalog)]
        stream = admission.try_admit(f"{name}-{count}", rate)
        if stream is None:
            break
        count += 1
    summary = admission.summary()
    print(f"  admitted {count} mixed-rate streams before "
          f"{admission.limiting_resource()} bound")
    print(f"  disk budget used {summary['disk_utilization']:.0%}, "
          f"NIC plane used {summary['network_utilization']:.0%}")

    # Serve the admitted mix and verify EDF meets every deadline.
    sim = Simulator()
    service = MbrCubSimulation(sim, admission, RngRegistry(5))
    service.start()
    sim.run(until=20.0)
    print(f"  served {service.total_due()} blocks over 20 s: "
          f"{service.total_missed()} deadline misses "
          f"(disk duty {service.mean_disk_utilization():.0%})\n")


def crossover_table() -> None:
    print("=== §3.2: the limiting resource depends on the playing mix ===")
    print(f"  {'bitrate':>9} {'streams':>8} {'disk':>6} {'net':>6} {'limit':>8}")
    for rate in (0.25e6, 0.5e6, 1e6, 2e6, 4e6, 8e6):
        row = run_mix_experiment([rate], duration=8.0, nic_bps=100e6)
        limiting = "disk" if row["limiting"] else "network"
        print(f"  {rate/1e6:>7.2f}M {row['streams']:>8.0f} "
              f"{row['disk_utilization_model']:>6.2f} "
              f"{row['network_utilization_model']:>6.2f} {limiting:>8}")
    print("  (small blocks pay the same seek for less data -> disk-bound;\n"
          "   large blocks saturate the NIC first -> network-bound)")


if __name__ == "__main__":
    admission_walkthrough()
    crossover_table()
