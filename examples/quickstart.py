#!/usr/bin/env python
"""Quickstart: build a small Tiger, play a movie, watch the schedule.

Builds a 4-cub system, stripes a few files across it, starts a handful
of viewers, and prints what the coherent-hallucination machinery did:
startup latencies, delivery statistics, per-cub load, and the bounded
view sizes that make the design scale.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro import TigerSystem, small_config


def main() -> None:
    # A 4-cub, 8-disk Tiger with 2 Mbit/s streams and decluster-2
    # mirroring; 32 streams of schedule capacity.
    system = TigerSystem(small_config(), seed=42)
    print(f"System: {system.config.num_cubs} cubs, "
          f"{system.config.num_disks} disks, "
          f"{system.config.num_slots} stream slots, "
          f"block service time {system.config.block_service_time*1000:.1f} ms")

    # Content is striped across every disk of every cub (§2.2).
    for name, minutes in [("attack-of-the-cubs", 2), ("the-hallucination", 2),
                          ("slot-machine", 1.5)]:
        entry = system.add_file(name, duration_s=minutes * 60)
        print(f"  striped {name!r}: {entry.num_blocks} blocks starting on "
              f"disk {entry.start_disk}")

    # One client machine playing several streams at once.
    client = system.add_client()
    instances = [client.start_stream(file_id=index % 3) for index in range(10)]

    system.run_for(30.0)

    print(f"\nAfter 30 s of simulated time "
          f"({system.sim.events_dispatched} events):")
    print(f"  schedule load: {system.oracle.num_occupied}/"
          f"{system.config.num_slots} slots "
          f"({system.oracle.load:.0%})")
    for instance in instances[:3]:
        monitor = client.streams[instance]
        print(f"  stream {instance}: startup {monitor.startup_latency:.2f} s, "
              f"{monitor.blocks_received} blocks, "
              f"{monitor.blocks_missed} missed, {monitor.blocks_late} late")

    print("\nPer-cub load (all within a few percent of each other — "
          "striping balances):")
    for cub in system.cubs:
        print(f"  {cub.name}: cpu {cub.cpu_utilization():5.1%}  "
              f"disks {cub.mean_disk_utilization():5.1%}  "
              f"view {cub.view.size()} records")

    # Stop two viewers; deschedule requests flood idempotently (§4.1.2).
    client.stop_stream(instances[0])
    client.stop_stream(instances[1])
    system.run_for(10.0)
    print(f"\nAfter stopping two viewers: "
          f"{system.oracle.num_occupied}/{system.config.num_slots} slots")

    # The hallucination stayed coherent throughout (or this raises).
    system.assert_invariants()
    print("Invariants hold: no slot ever held two viewers, views stayed "
          "bounded.")


if __name__ == "__main__":
    main()
