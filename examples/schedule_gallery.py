#!/usr/bin/env python
"""Draw the paper's figures live: the slot ring and the 2-D plane.

Figure 3 (the disk schedule with per-disk pointers) and Figure 4 (the
network schedule's stacked bandwidth boxes), rendered from a running
system — plus the Figure 7-style comparison of per-cub views.

Run:  python examples/schedule_gallery.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro import TigerSystem, small_config
from repro.analysis.render import (
    render_disk_schedule,
    render_network_schedule,
    render_view_summary,
)
from repro.core.netschedule import NetworkSchedule


def disk_schedule_figure() -> None:
    print("=== Figure 3: the disk schedule, live ===")
    system = TigerSystem(small_config(), seed=33)
    system.add_standard_content(num_files=4, duration_s=120)
    client = system.add_client()
    for index in range(9):
        client.start_stream(file_id=index % 4)
    system.run_for(12.0)

    occupancy = {}
    for slot in system.oracle.occupied_slots():
        entry = system.oracle.occupant(slot)
        occupancy[slot] = f"v{entry.instance}"
    print(render_disk_schedule(system.clock, occupancy, system.sim.now))
    print()
    print("=== Figure 7: what each cub actually knows ===")
    print(render_view_summary(system))
    print()


def network_schedule_figure() -> None:
    print("=== Figure 4: the 2-D network schedule ===")
    schedule = NetworkSchedule(length=14.0, capacity_bps=8e6, width=1.0)
    # The paper's example: viewers of different bitrates at different
    # positions, including a too-small gap.
    schedule.insert("viewer4", 0.0, 2e6)
    schedule.insert("viewer0", 1.125, 3e6)
    schedule.insert("viewer1", 2.25, 1e6)
    schedule.insert("viewer3", 2.6, 2e6)
    schedule.insert("viewer2", 4.0, 4e6)
    print(render_network_schedule(schedule, width=56, height=8))
    print()
    print("(the sliver between viewer4 and viewer2 below the 6 Mbit "
          "level is the\n unusable fragment §3.2 describes)")


if __name__ == "__main__":
    disk_schedule_figure()
    network_schedule_figure()
