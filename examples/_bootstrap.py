"""Path shim: make ``python examples/<script>.py`` work from a checkout.

The project is laid out src-style (the package lives in ``src/repro``)
and is not pip-installed into the interpreter, so a bare
``python examples/quickstart.py`` has no ``repro`` on its path unless
the caller remembered ``PYTHONPATH=src``.  Every example imports this
module first; if ``repro`` is not already importable, the sibling
``src`` directory is prepended to ``sys.path``.  When the package *is*
installed (or PYTHONPATH is set), this is a no-op, so the installed
version always wins.
"""

import importlib.util
import os
import sys

if importlib.util.find_spec("repro") is None:
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
        ),
    )
