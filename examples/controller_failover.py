#!/usr/bin/env python
"""Controller fault tolerance — completing the paper's future work.

§2.3: "the distributed schedule work described in this paper removes
the major function that the controller in a centralized Tiger system
would have.  The Netshow product group plans on making the remaining
functions of the controller fault tolerant.  ...  Making its remaining
functions fault tolerant is a simple exercise."

This example does the exercise and demonstrates the two halves of the
claim:

1. running streams never touch the controller — kill it and data keeps
   flowing untouched;
2. with a backup controller attached (replication + heartbeats +
   client retry), even *new* starts and stops survive the outage.

Run:  python examples/controller_failover.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro import TigerSystem, small_config


def main() -> None:
    system = TigerSystem(small_config(), seed=17)
    system.add_standard_content(num_files=5, duration_s=240)
    backup = system.enable_controller_backup(takeover_timeout=3.0)
    client = system.add_client()

    for index in range(10):
        client.start_stream(file_id=index % 5)
    system.run_for(10.0)
    print(f"{system.oracle.num_occupied} streams running; backup controller "
          f"passive: {not backup.active}")

    print("\n*** killing the primary controller ***")
    received_before = system.total_client_received()
    system.fail_controller()

    # Half 1: existing streams are untouched — the schedule is on the
    # cubs, not the controller.
    system.run_for(10.0)
    delivered = system.total_client_received() - received_before
    print(f"10 s with no controller at all: {delivered} blocks delivered, "
          f"{system.total_client_missed()} lost "
          f"(the schedule never lived on the controller)")

    # Half 2: the backup notices the silence and takes over.
    print(f"backup active: {backup.active} "
          f"(took over at t={backup.took_over_at:.1f}s)")

    newcomer = client.start_stream(file_id=2)
    system.run_for(12.0)
    monitor = client.streams[newcomer]
    print(f"\nnew start served by the backup: startup "
          f"{monitor.startup_latency:.2f}s, {monitor.blocks_received} blocks")

    client.stop_stream(newcomer)
    system.run_for(6.0)
    print(f"stop routed by the backup: slot freed "
          f"({system.oracle.num_occupied} streams remain)")

    system.assert_invariants()
    print("\nInvariants held across the controller outage.")


if __name__ == "__main__":
    main()
