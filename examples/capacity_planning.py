#!/usr/bin/env python
"""Capacity planning with the Tiger model (§2.3, §3.1, §3.3).

Walks through the arithmetic an operator would do before deploying:

* per-disk stream capacity from the zoned-disk model and the decluster
  factor (including the failed-mode reserve);
* the decluster tradeoff: bandwidth reserved vs machines a second
  failure may hit;
* restripe cost when growing the system — and why it does not depend
  on system size;
* the §3.3 distributed-vs-central control traffic comparison.

Run:  python examples/capacity_planning.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro.config import paper_config
from repro.core.centralized import scalability_table
from repro.disk.model import (
    DiskParameters,
    unfailed_utilization_at_capacity,
    worst_case_streams_per_disk,
)
from repro.storage.catalog import Catalog
from repro.storage.layout import StripeLayout
from repro.storage.mirror import MirrorScheme
from repro.storage.restripe import estimate_restripe_time, plan_restripe


def disk_capacity() -> None:
    print("=== Per-disk capacity vs decluster factor (0.25 MB blocks) ===")
    params = DiskParameters()
    print(f"  {'decluster':>9} {'streams/disk':>12} {'bw reserved':>12} "
          f"{'unfailed duty':>13}")
    for decluster in (1, 2, 4, 8):
        streams = worst_case_streams_per_disk(params, 250_000, decluster)
        scheme = MirrorScheme(StripeLayout(14, 4), decluster)
        duty = unfailed_utilization_at_capacity(params, 250_000, decluster)
        print(f"  {decluster:>9} {streams:>12.2f} "
              f"{scheme.bandwidth_reserved_fraction():>11.0%} {duty:>13.0%}")
    print("  (paper: decluster 4 reserves a fifth of bandwidth; its disks "
          "measured 10.75 streams)\n")


def vulnerability() -> None:
    print("=== Second-failure vulnerability (14-cub ring) ===")
    layout = StripeLayout(14, 4)
    for decluster in (2, 4):
        scheme = MirrorScheme(layout, decluster)
        vulnerable = scheme.second_failure_vulnerable_cubs(5)
        survivable = scheme.survivable_failure_pairs()
        total_pairs = 14 * 13 // 2
        print(f"  decluster {decluster}: a failure of cub 5 leaves "
              f"{len(vulnerable)} machines critical {vulnerable};")
        print(f"      {survivable}/{total_pairs} cub pairs may fail jointly "
              f"without data loss")
    print()


def restripe_cost() -> None:
    print("=== Restripe time when adding one cub (does NOT grow with N) ===")
    for cubs in (7, 14, 28):
        old = StripeLayout(cubs, 4)
        new = StripeLayout(cubs + 1, 4)
        catalog = Catalog(1.0, old.num_disks)
        # Same content per disk at every scale: N disks x 20 minutes.
        for index in range(old.num_disks):
            catalog.add_file(f"f{index}", 2e6, 1200.0)
        sizes = {entry.file_id: 250_000 for entry in catalog.files()}
        plan = plan_restripe(old, new, catalog.files(), sizes)
        wall = estimate_restripe_time(
            plan, disk_read_rate=5.2e6, disk_write_rate=4.5e6,
            cub_network_rate=12e6,
        )
        print(f"  {cubs:>2} -> {cubs+1:>2} cubs: move "
              f"{plan.total_bytes/1e9:6.1f} GB total, "
              f"wall-clock ~{wall/60:5.1f} min")
    print("  (total bytes grow with the system; wall-clock stays flat — "
          "the switch scales)\n")


def control_traffic() -> None:
    print("=== §3.3: central controller vs distributed per-cub traffic ===")
    rows = scalability_table([14, 56, 224, 1000])
    print(f"  {'cubs':>5} {'streams':>8} {'central ctrl':>14} "
          f"{'per-cub (dist.)':>16}")
    for row in rows:
        print(f"  {row['cubs']:>5} {row['streams']:>8} "
              f"{row['central_controller_Bps']/1e6:>11.2f} MB/s "
              f"{row['distributed_per_cub_Bps']/1e3:>12.1f} KB/s")
    print("  (the paper's 1000-cub example: 3-4 MB/s centrally vs a flat "
          "~10-20 KB/s per cub)\n")


def system_summary() -> None:
    config = paper_config()
    print("=== The paper's testbed, derived ===")
    print(f"  {config.num_cubs} cubs x {config.disks_per_cub} disks, "
          f"{config.max_bitrate_bps/1e6:.0f} Mbit/s streams")
    print(f"  schedule: {config.num_slots} slots x "
          f"{config.block_service_time*1000:.1f} ms over "
          f"{config.schedule_duration:.0f} s")
    print(f"  per-block: {config.block_bytes//1000} KB primary + "
          f"{config.decluster} x {config.mirror_piece_bytes()//1000} KB "
          f"mirror pieces")


if __name__ == "__main__":
    disk_capacity()
    vulnerability()
    restripe_cost()
    control_traffic()
    system_summary()
