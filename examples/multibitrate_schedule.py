#!/usr/bin/env python
"""The multiple-bitrate network schedule (§3.2, §4.2).

Demonstrates the 2-D network schedule on mixed-rate content:

1. fragmentation — arbitrary start offsets strand bandwidth in gaps
   shorter than one block play time; quantizing starts to
   block_play_time/decluster keeps the schedule packable;
2. the distributed tentative-insert handshake — an originating cub
   speculatively inserts + starts the disk read, and commits only when
   its successor's view agrees.

Run:  python examples/multibitrate_schedule.py
"""

import _bootstrap  # noqa: F401  (path shim; keep before repro imports)

from repro.core.netschedule import NetScheduleNode, NetworkSchedule
from repro.net.switch import SwitchedNetwork
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

LENGTH = 14.0      # 14 cubs x 1 s block play time
CAPACITY = 100e6   # one OC-3-ish NIC, rounded for readability
WIDTH = 1.0        # every entry is one block play time wide
DECLUSTER = 4


def fragmentation_demo() -> None:
    print("=== Fragmentation: arbitrary vs quantized starts ===")
    rng = RngRegistry(5).stream("premiere")
    rates = [1e6, 2e6, 4e6, 6e6]

    arbitrary = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
    quantized = NetworkSchedule(LENGTH, CAPACITY, WIDTH)
    quantum = WIDTH / DECLUSTER

    rejected = {"arbitrary": 0, "quantized": 0}
    for _ in range(2000):
        wanted_offset = rng.uniform(0, LENGTH)
        rate = rng.choice(rates)
        spot = arbitrary.find_offset(rate, after=wanted_offset)
        if spot is None:
            rejected["arbitrary"] += 1
        else:
            arbitrary.insert("viewer", spot, rate)
        spot = quantized.find_offset(rate, after=wanted_offset, quantum=quantum)
        if spot is None:
            rejected["quantized"] += 1
        else:
            quantized.insert("viewer", spot, rate)

    for label, schedule in [("arbitrary", arbitrary), ("quantized", quantized)]:
        print(f"  {label:10s}: {len(schedule)} entries, "
              f"{schedule.utilization():.1%} of the bandwidth-time plane, "
              f"{rejected[label]} rejections")
    print("  (Quantized starts at block_play_time/decluster keep "
          "fragmentation acceptable — §3.2.)\n")


def handshake_demo() -> None:
    print("=== Distributed insertion: tentative insert + confirmation ===")
    sim = Simulator()
    rngs = RngRegistry(1)
    network = SwitchedNetwork(sim, rngs, base_latency=0.002)
    nodes = [
        NetScheduleNode(sim, index, 3, network, LENGTH, CAPACITY, WIDTH)
        for index in range(3)
    ]
    for node in nodes:
        network.register(node, 155e6)

    # The successor's view knows about load the originator can't see.
    nodes[1].view.insert("invisible-to-node-0", 2.0, 97e6)

    outcomes = {}
    nodes[0].try_insert("premiere-4K", 2.0, 6e6,
                        on_done=lambda ok: outcomes.__setitem__("conflicting", ok))
    nodes[0].try_insert("premiere-4K", 7.0, 6e6,
                        on_done=lambda ok: outcomes.__setitem__("clean", ok))
    sim.run()

    print(f"  insert into window the successor knows is full: "
          f"{'committed' if outcomes['conflicting'] else 'aborted'} "
          f"(speculative disk read cancelled)")
    print(f"  insert into a clean window: "
          f"{'committed' if outcomes['clean'] else 'aborted'}")
    print(f"  originator stats: {nodes[0].commits} commits, "
          f"{nodes[0].aborts} aborts")
    load = nodes[1].view.load_at(7.5)
    print(f"  successor's view now shows {load/1e6:.0f} Mbit/s at the "
          f"committed window — the reservation became a real entry.")


if __name__ == "__main__":
    fragmentation_demo()
    handshake_demo()
